#include "sim/program.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace rsp::sim {
namespace {

// Dense integer slot of a shared unit: row pools first (rows ×
// units_per_row, row-major), then column pools. validate_context has
// already bounds-checked line/index, so the slot is in
// [0, sharing.total_units(array)).
int unit_slot(const arch::SharingPlan& sharing, const arch::ArraySpec& array,
              const arch::SharedUnitId& unit) {
  if (unit.pool == arch::SharedUnitId::Pool::kRow)
    return unit.line * sharing.units_per_row + unit.index;
  return array.rows * sharing.units_per_row +
         unit.line * sharing.units_per_col + unit.index;
}

}  // namespace

SimProgram SimProgram::compile(const sched::ConfigurationContext& context) {
  validate_context(context);

  const arch::Architecture& a = context.architecture();
  const arch::ArraySpec& array = a.array;
  const auto& ops = context.ops();
  const std::size_t n = ops.size();
  const int total_cycles = context.length();

  SimProgram p;
  p.total_cycles_ = total_cycles;

  // ------------------------------------------------- struct-of-arrays ops
  p.kind_.reserve(n);
  p.producer_a_.reserve(n);
  p.producer_b_.reserve(n);
  p.imm_a_.reserve(n);
  p.imm_b_.reserve(n);
  p.imm_.reserve(n);
  p.array_id_.reserve(n);
  p.address_.reserve(n);

  std::map<std::string, std::int32_t> interned;
  const auto slot = [](const std::vector<sched::ProgOperand>& operands,
                       std::size_t index, std::int32_t& producer,
                       std::int64_t& imm) {
    if (index < operands.size() && !operands[index].is_imm()) {
      producer = static_cast<std::int32_t>(operands[index].producer);
      imm = 0;
    } else {
      // Absent operand or immediate: the dense loop reads 0 / the literal.
      producer = -1;
      imm = index < operands.size() ? operands[index].imm : 0;
    }
  };

  for (const sched::ScheduledOp& op : ops) {
    p.kind_.push_back(op.kind);
    p.imm_.push_back(op.imm);
    std::int32_t pa = -1, pb = -1;
    std::int64_t ia = 0, ib = 0;
    slot(op.operands, 0, pa, ia);
    slot(op.operands, 1, pb, ib);
    p.producer_a_.push_back(pa);
    p.producer_b_.push_back(pb);
    p.imm_a_.push_back(ia);
    p.imm_b_.push_back(ib);
    if (ir::is_memory_op(op.kind)) {
      const auto [it, fresh] = interned.emplace(
          op.array, static_cast<std::int32_t>(p.array_names_.size()));
      if (fresh) p.array_names_.push_back(op.array);
      p.array_id_.push_back(it->second);
      p.address_.push_back(op.address);
    } else {
      p.array_id_.push_back(-1);
      p.address_.push_back(0);
    }
  }

  // ------------------------------------- activity list (CSR over cycles)
  // Issue order is exactly the dense loop's visitation order: ascending
  // cycle, then ascending op index within a cycle.
  std::vector<std::vector<std::int64_t>> by_cycle(
      static_cast<std::size_t>(std::max(total_cycles, 1)));
  for (std::size_t i = 0; i < n; ++i)
    by_cycle[static_cast<std::size_t>(ops[i].cycle)].push_back(
        static_cast<std::int64_t>(i));

  p.issue_order_.reserve(n);
  p.issue_offsets_.push_back(0);
  for (int t = 0; t < total_cycles; ++t) {
    const auto& issues = by_cycle[static_cast<std::size_t>(t)];
    if (issues.empty()) continue;
    p.active_cycles_.push_back(t);
    p.issue_order_.insert(p.issue_order_.end(), issues.begin(), issues.end());
    p.issue_offsets_.push_back(
        static_cast<std::int64_t>(p.issue_order_.size()));
  }

  // ----------------------- structural legality + schedule-static stats
  // Replays every check of the dense reference loop over the same order.
  // Idle cycles never mutate the dense loop's check state, so walking only
  // the active cycles is equivalent. Per-cycle occupancy uses persistent
  // integer-indexed tables with dirty lists instead of per-cycle maps.
  UtilizationStats& st = p.stats_;
  st.cycles = total_cycles;
  st.pe_issue_slots =
      static_cast<std::int64_t>(total_cycles) * array.num_pes();
  const int total_units = a.sharing.total_units(array);
  st.shared_unit_slots =
      static_cast<std::int64_t>(total_cycles) * total_units;

  std::vector<int> pe_busy_until(static_cast<std::size_t>(array.num_pes()),
                                 0);
  std::vector<int> ready_at(n, 0);
  std::vector<int> row_reads(static_cast<std::size_t>(array.rows), 0);
  std::vector<int> row_writes(static_cast<std::size_t>(array.rows), 0);
  std::vector<char> unit_taken(static_cast<std::size_t>(total_units), 0);
  std::vector<int> dirty_read_rows, dirty_write_rows, dirty_units;

  for (std::size_t c = 0; c < p.active_cycles_.size(); ++c) {
    const int t = p.active_cycles_[c];
    for (int row : dirty_read_rows) row_reads[static_cast<std::size_t>(row)] = 0;
    for (int row : dirty_write_rows)
      row_writes[static_cast<std::size_t>(row)] = 0;
    for (int unit : dirty_units) unit_taken[static_cast<std::size_t>(unit)] = 0;
    dirty_read_rows.clear();
    dirty_write_rows.clear();
    dirty_units.clear();

    for (std::int64_t s = p.issue_offsets_[c]; s < p.issue_offsets_[c + 1];
         ++s) {
      const auto i = static_cast<std::size_t>(p.issue_order_[s]);
      const sched::ScheduledOp& op = ops[i];

      const int pe = array.linear(op.pe);
      if (pe_busy_until[static_cast<std::size_t>(pe)] > t)
        throw Error("simulator: PE double-booked at cycle " +
                    std::to_string(t));
      pe_busy_until[static_cast<std::size_t>(pe)] =
          t + (ir::is_critical_op(op.kind) ? op.latency : 1);

      const auto require_ready = [&](const sched::ProgOperand& o) {
        if (!o.is_imm() && ready_at[static_cast<std::size_t>(o.producer)] > t)
          throw Error("simulator: operand consumed before ready at cycle " +
                      std::to_string(t));
      };

      switch (op.kind) {
        case ir::OpKind::kLoad:
          if (++row_reads[static_cast<std::size_t>(op.pe.row)] >
              array.read_buses_per_row)
            throw Error("simulator: read-bus oversubscribed on row " +
                        std::to_string(op.pe.row) + " at cycle " +
                        std::to_string(t));
          dirty_read_rows.push_back(op.pe.row);
          ++st.bus_reads;
          break;
        case ir::OpKind::kStore:
          if (++row_writes[static_cast<std::size_t>(op.pe.row)] >
              array.write_buses_per_row)
            throw Error("simulator: write-bus oversubscribed on row " +
                        std::to_string(op.pe.row) + " at cycle " +
                        std::to_string(t));
          dirty_write_rows.push_back(op.pe.row);
          require_ready(op.operands[0]);
          ++st.bus_writes;
          break;
        case ir::OpKind::kNop:
          break;
        default: {
          if (ir::is_critical_op(op.kind)) {
            ++st.mult_ops;
            if (a.shares_multiplier()) {
              if (!op.unit)
                throw Error("simulator: shared multiply without a unit");
              const int unit = unit_slot(a.sharing, array, *op.unit);
              if (unit_taken[static_cast<std::size_t>(unit)])
                throw Error("simulator: unit " + arch::to_string(*op.unit) +
                            " double-issued at cycle " + std::to_string(t));
              unit_taken[static_cast<std::size_t>(unit)] = 1;
              dirty_units.push_back(unit);
              ++st.shared_unit_issues;
            }
          }
          if (!op.operands.empty()) require_ready(op.operands[0]);
          if (op.operands.size() > 1) require_ready(op.operands[1]);
          break;
        }
      }
      ready_at[i] = t + op.latency;
      ++st.pe_issues;
    }
  }
  return p;
}

SimResult SimProgram::run(ir::Memory& memory, ir::DatapathMode mode) const {
  SimResult result;
  result.stats = stats_;
  result.values.assign(kind_.size(), 0);

  const auto operand = [&result](std::int32_t producer,
                                 std::int64_t imm) -> std::int64_t {
    // A producer issuing later in the schedule still holds its initial 0
    // here, exactly as in the dense loop's ready_at == 0 path.
    return producer >= 0 ? result.values[static_cast<std::size_t>(producer)]
                         : imm;
  };

  for (std::int64_t s = 0;
       s < static_cast<std::int64_t>(issue_order_.size()); ++s) {
    const auto i = static_cast<std::size_t>(issue_order_[s]);
    std::int64_t value = 0;
    switch (kind_[i]) {
      case ir::OpKind::kLoad:
        value = memory.read(array_names_[static_cast<std::size_t>(
                                array_id_[i])],
                            address_[i]);
        break;
      case ir::OpKind::kStore:
        memory.write(
            array_names_[static_cast<std::size_t>(array_id_[i])],
            address_[i], operand(producer_a_[i], imm_a_[i]));
        break;
      case ir::OpKind::kNop:
        break;
      default:
        value = ir::eval_op(kind_[i], operand(producer_a_[i], imm_a_[i]),
                            operand(producer_b_[i], imm_b_[i]), imm_[i],
                            mode);
        break;
    }
    result.values[i] = value;
  }
  return result;
}

}  // namespace rsp::sim
