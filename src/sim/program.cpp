#include "sim/program.hpp"

#include <algorithm>
#include <map>

#include "analysis/verifier.hpp"
#include "util/error.hpp"

namespace rsp::sim {

SimProgram SimProgram::compile(const sched::ConfigurationContext& context) {
  // Both check passes live in the static analysis layer (the engine behind
  // `rsp_cli lint`): per-op validation first (InvalidArgumentError), then
  // the structural replay over the dense loop's issue order (Error). A
  // context that compiles is exactly a context the linter reports no
  // errors on, message for message.
  validate_context(context);
  analysis::verify_structural(context);

  const arch::Architecture& a = context.architecture();
  const arch::ArraySpec& array = a.array;
  const auto& ops = context.ops();
  const std::size_t n = ops.size();
  const int total_cycles = context.length();

  SimProgram p;
  p.total_cycles_ = total_cycles;

  // ------------------------------------------------- struct-of-arrays ops
  p.kind_.reserve(n);
  p.producer_a_.reserve(n);
  p.producer_b_.reserve(n);
  p.imm_a_.reserve(n);
  p.imm_b_.reserve(n);
  p.imm_.reserve(n);
  p.array_id_.reserve(n);
  p.address_.reserve(n);

  std::map<std::string, std::int32_t> interned;
  const auto slot = [](const std::vector<sched::ProgOperand>& operands,
                       std::size_t index, std::int32_t& producer,
                       std::int64_t& imm) {
    if (index < operands.size() && !operands[index].is_imm()) {
      producer = static_cast<std::int32_t>(operands[index].producer);
      imm = 0;
    } else {
      // Absent operand or immediate: the dense loop reads 0 / the literal.
      producer = -1;
      imm = index < operands.size() ? operands[index].imm : 0;
    }
  };

  for (const sched::ScheduledOp& op : ops) {
    p.kind_.push_back(op.kind);
    p.imm_.push_back(op.imm);
    std::int32_t pa = -1, pb = -1;
    std::int64_t ia = 0, ib = 0;
    slot(op.operands, 0, pa, ia);
    slot(op.operands, 1, pb, ib);
    p.producer_a_.push_back(pa);
    p.producer_b_.push_back(pb);
    p.imm_a_.push_back(ia);
    p.imm_b_.push_back(ib);
    if (ir::is_memory_op(op.kind)) {
      const auto [it, fresh] = interned.emplace(
          op.array, static_cast<std::int32_t>(p.array_names_.size()));
      if (fresh) p.array_names_.push_back(op.array);
      p.array_id_.push_back(it->second);
      p.address_.push_back(op.address);
    } else {
      p.array_id_.push_back(-1);
      p.address_.push_back(0);
    }
  }

  // ------------------------------------- activity list (CSR over cycles)
  // Issue order is exactly the dense loop's visitation order: ascending
  // cycle, then ascending op index within a cycle.
  std::vector<std::vector<std::int64_t>> by_cycle(
      static_cast<std::size_t>(std::max(total_cycles, 1)));
  for (std::size_t i = 0; i < n; ++i)
    by_cycle[static_cast<std::size_t>(ops[i].cycle)].push_back(
        static_cast<std::int64_t>(i));

  p.issue_order_.reserve(n);
  p.issue_offsets_.push_back(0);
  for (int t = 0; t < total_cycles; ++t) {
    const auto& issues = by_cycle[static_cast<std::size_t>(t)];
    if (issues.empty()) continue;
    p.active_cycles_.push_back(t);
    p.issue_order_.insert(p.issue_order_.end(), issues.begin(), issues.end());
    p.issue_offsets_.push_back(
        static_cast<std::int64_t>(p.issue_order_.size()));
  }

  // --------------------------------------------- schedule-static stats
  // The structural replay already proved the schedule legal, so every
  // counter the replay used to accumulate is a pure function of the op
  // list: one flat pass, no occupancy tables.
  UtilizationStats& st = p.stats_;
  st.cycles = total_cycles;
  st.pe_issue_slots =
      static_cast<std::int64_t>(total_cycles) * array.num_pes();
  st.shared_unit_slots = static_cast<std::int64_t>(total_cycles) *
                         a.sharing.total_units(array);
  for (const sched::ScheduledOp& op : ops) {
    ++st.pe_issues;
    switch (op.kind) {
      case ir::OpKind::kLoad:
        ++st.bus_reads;
        break;
      case ir::OpKind::kStore:
        ++st.bus_writes;
        break;
      default:
        if (ir::is_critical_op(op.kind)) {
          ++st.mult_ops;
          if (a.shares_multiplier()) ++st.shared_unit_issues;
        }
        break;
    }
  }
  return p;
}

SimResult SimProgram::run(ir::Memory& memory, ir::DatapathMode mode) const {
  SimResult result;
  result.stats = stats_;
  result.values.assign(kind_.size(), 0);

  const auto operand = [&result](std::int32_t producer,
                                 std::int64_t imm) -> std::int64_t {
    // A producer issuing later in the schedule still holds its initial 0
    // here, exactly as in the dense loop's ready_at == 0 path.
    return producer >= 0 ? result.values[static_cast<std::size_t>(producer)]
                         : imm;
  };

  for (std::int64_t s = 0;
       s < static_cast<std::int64_t>(issue_order_.size()); ++s) {
    const auto i = static_cast<std::size_t>(issue_order_[s]);
    std::int64_t value = 0;
    switch (kind_[i]) {
      case ir::OpKind::kLoad:
        value = memory.read(array_names_[static_cast<std::size_t>(
                                array_id_[i])],
                            address_[i]);
        break;
      case ir::OpKind::kStore:
        memory.write(
            array_names_[static_cast<std::size_t>(array_id_[i])],
            address_[i], operand(producer_a_[i], imm_a_[i]));
        break;
      case ir::OpKind::kNop:
        break;
      default:
        value = ir::eval_op(kind_[i], operand(producer_a_[i], imm_a_[i]),
                            operand(producer_b_[i], imm_b_[i]), imm_[i],
                            mode);
        break;
    }
    result.values[i] = value;
  }
  return result;
}

}  // namespace rsp::sim
