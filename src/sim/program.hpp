// Compiled simulation program: the event-driven engine's preprocessing pass.
//
// `SimProgram::compile` lowers a `sched::ConfigurationContext` into an
// immutable struct-of-arrays form executable without any per-cycle
// bookkeeping:
//
//   * op records are flattened into parallel vectors (kind, two operand
//     slots, immediate, interned array id + address) — integer ids
//     everywhere, no per-cycle string keys;
//   * the per-cycle issue lists become one CSR table over the *active*
//     cycles only (`active_cycles_` / `issue_offsets_` / `issue_order_`),
//     so idle cycles cost nothing at run time;
//   * every structural-legality check of the dense reference loop
//     (PE exclusivity, bus budgets, shared-unit arbitration, operand
//     readiness) is replayed once at compile time over exactly the dense
//     visitation order — equivalent because idle cycles never mutate the
//     dense loop's check state — and the utilisation statistics, which are
//     static properties of the schedule, are precomputed alongside.
//
// `run` is then a linear walk over the scheduled ops in dense execution
// order: bit-identical values, stats and final memory by construction (the
// VCD dump depends only on context + SimResult, so it is byte-identical
// too). One compiled program can be run against many independent memories;
// src/runtime/sim_batch.hpp fans that out over a ThreadPool.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/interp.hpp"
#include "sched/context.hpp"
#include "sim/machine.hpp"

namespace rsp::sim {

class SimProgram {
 public:
  /// Compiles (and fully legality-checks) a context. Throws the same
  /// rsp::Error diagnostics the dense engine would raise while executing.
  static SimProgram compile(const sched::ConfigurationContext& context);

  /// Executes the program against `memory`. const and reentrant: safe to
  /// call concurrently from many threads on distinct memories.
  SimResult run(ir::Memory& memory,
                ir::DatapathMode mode = ir::DatapathMode::kExact) const;

  std::int64_t size() const {
    return static_cast<std::int64_t>(kind_.size());
  }
  int total_cycles() const { return total_cycles_; }
  /// Cycles with at least one scheduled issue — the event engine's work set.
  std::int64_t active_cycle_count() const {
    return static_cast<std::int64_t>(active_cycles_.size());
  }
  /// Schedule-static utilisation counters (identical to what a run reports).
  const UtilizationStats& static_stats() const { return stats_; }

 private:
  SimProgram() = default;

  // One operand slot: producer index into the op vectors, or an immediate
  // when producer < 0. An absent operand encodes as immediate 0, matching
  // the dense loop's "missing operand reads as 0" rule.
  std::vector<std::int32_t> producer_a_, producer_b_;
  std::vector<std::int64_t> imm_a_, imm_b_;

  std::vector<ir::OpKind> kind_;
  std::vector<std::int64_t> imm_;      // const value / shift amount
  std::vector<std::int32_t> array_id_; // memory ops; -1 otherwise
  std::vector<std::int64_t> address_;
  std::vector<std::string> array_names_;  // interned, indexed by array_id_

  // Activity list: op indices in dense execution order (issue cycle, then
  // op index), grouped per active cycle by the CSR offsets.
  std::vector<std::int64_t> issue_order_;
  std::vector<std::int32_t> active_cycles_;
  std::vector<std::int64_t> issue_offsets_;  // size active_cycles_.size()+1

  int total_cycles_ = 0;
  UtilizationStats stats_;
};

}  // namespace rsp::sim
