#include "sim/machine.hpp"

#include <algorithm>
#include <map>

#include "analysis/verifier.hpp"
#include "sim/program.hpp"
#include "util/error.hpp"

namespace rsp::sim {

const char* engine_name(SimEngine engine) {
  return engine == SimEngine::kDense ? "dense" : "event";
}

SimEngine parse_sim_engine(const std::string& name) {
  if (name == "dense") return SimEngine::kDense;
  if (name == "event") return SimEngine::kEvent;
  throw InvalidArgumentError("unknown simulation engine '" + name +
                             "' (expected 'dense' or 'event')");
}

void validate_context(const sched::ConfigurationContext& context) {
  // The per-op validation rules (and their exact messages) live in the
  // static analysis layer, which is also the engine behind `rsp_cli lint`
  // — one source of truth for legality.
  analysis::verify_context(context);
}

SimResult Machine::run(const sched::ConfigurationContext& context,
                       ir::Memory& memory) const {
  if (engine_ == SimEngine::kEvent)
    return SimProgram::compile(context).run(memory, mode_);
  validate_context(context);
  return run_dense(context, memory);
}

SimResult Machine::run_dense(const sched::ConfigurationContext& context,
                             ir::Memory& memory) const {
  const arch::Architecture& a = context.architecture();
  const arch::ArraySpec& array = a.array;
  const auto& ops = context.ops();

  // Bucket op indices by issue cycle.
  const int total_cycles = context.length();
  std::vector<std::vector<sched::ProgIndex>> by_cycle(
      static_cast<std::size_t>(std::max(total_cycles, 1)));
  for (sched::ProgIndex i = 0; i < context.size(); ++i)
    by_cycle[static_cast<std::size_t>(ops[static_cast<std::size_t>(i)].cycle)]
        .push_back(i);

  SimResult result;
  result.values.assign(ops.size(), 0);
  std::vector<int> ready_at(ops.size(), 0);  // cycle the value becomes usable

  UtilizationStats& st = result.stats;
  st.cycles = total_cycles;
  st.pe_issue_slots =
      static_cast<std::int64_t>(total_cycles) * array.num_pes();
  st.shared_unit_slots = static_cast<std::int64_t>(total_cycles) *
                         a.sharing.total_units(array);

  // A PE blocks for every stage of a multi-cycle multiplication.
  std::vector<int> pe_busy_until(static_cast<std::size_t>(array.num_pes()), 0);

  for (int t = 0; t < total_cycles; ++t) {
    // Per-cycle structural occupancy.
    std::map<int, int> row_reads, row_writes;
    std::map<std::string, sched::ProgIndex> unit_taken;

    for (sched::ProgIndex i : by_cycle[static_cast<std::size_t>(t)]) {
      const sched::ScheduledOp& op = ops[static_cast<std::size_t>(i)];

      // PE exclusivity (with multi-stage occupancy).
      const int pe = array.linear(op.pe);
      if (pe_busy_until[static_cast<std::size_t>(pe)] > t)
        throw Error("simulator: PE double-booked at cycle " +
                    std::to_string(t));
      pe_busy_until[static_cast<std::size_t>(pe)] =
          t + (ir::is_critical_op(op.kind) ? op.latency : 1);

      // Operand collection (values must be ready).
      auto value_of = [&](const sched::ProgOperand& o) -> std::int64_t {
        if (o.is_imm()) return o.imm;
        if (ready_at[static_cast<std::size_t>(o.producer)] > t)
          throw Error("simulator: operand consumed before ready at cycle " +
                      std::to_string(t));
        return result.values[static_cast<std::size_t>(o.producer)];
      };

      std::int64_t value = 0;
      switch (op.kind) {
        case ir::OpKind::kLoad:
          if (++row_reads[op.pe.row] > array.read_buses_per_row)
            throw Error("simulator: read-bus oversubscribed on row " +
                        std::to_string(op.pe.row) + " at cycle " +
                        std::to_string(t));
          value = memory.read(op.array, op.address);
          ++st.bus_reads;
          break;
        case ir::OpKind::kStore:
          if (++row_writes[op.pe.row] > array.write_buses_per_row)
            throw Error("simulator: write-bus oversubscribed on row " +
                        std::to_string(op.pe.row) + " at cycle " +
                        std::to_string(t));
          memory.write(op.array, op.address, value_of(op.operands[0]));
          ++st.bus_writes;
          break;
        case ir::OpKind::kNop:
          break;
        default: {
          if (ir::is_critical_op(op.kind)) {
            ++st.mult_ops;
            if (a.shares_multiplier()) {
              if (!op.unit)
                throw Error("simulator: shared multiply without a unit");
              const std::string key = arch::to_string(*op.unit);
              if (!unit_taken.emplace(key, i).second)
                throw Error("simulator: unit " + key +
                            " double-issued at cycle " + std::to_string(t));
              ++st.shared_unit_issues;
            }
          }
          const std::int64_t lhs =
              op.operands.empty() ? 0 : value_of(op.operands[0]);
          const std::int64_t rhs =
              op.operands.size() > 1 ? value_of(op.operands[1]) : 0;
          value = ir::eval_op(op.kind, lhs, rhs, op.imm, mode_);
          break;
        }
      }
      result.values[static_cast<std::size_t>(i)] = value;
      ready_at[static_cast<std::size_t>(i)] = t + op.latency;
      ++st.pe_issues;
    }
  }
  return result;
}

}  // namespace rsp::sim
