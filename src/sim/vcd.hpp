// VCD (value change dump) waveform export of a simulated context.
//
// Produces a standard VCD file with, per PE, its opcode and result value,
// plus the global cycle counter and per-row bus activity — enough to open a
// kernel run in GTKWave and watch the staggered waves of Fig. 2 flow
// through the array.
#pragma once

#include <string>

#include "sched/context.hpp"
#include "sim/machine.hpp"

namespace rsp::sim {

struct VcdOptions {
  std::string timescale = "1ns";
  bool include_bus_signals = true;
};

/// Renders the waveform of `context` executed with values from `result`
/// (obtain `result` from Machine::run on the same context).
std::string to_vcd(const sched::ConfigurationContext& context,
                   const SimResult& result, VcdOptions options = {});

}  // namespace rsp::sim
