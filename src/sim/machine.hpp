// Cycle-accurate functional simulator of the RSP array.
//
// Executes a configuration context cycle by cycle against a data memory:
// PEs read operands from producer output registers, loads/stores go over
// the row buses, shared multiplications flow through the bus switch into
// the (possibly pipelined) shared unit and return `latency` cycles later.
// The simulator validates structural legality as it runs (it refuses
// contexts that oversubscribe a PE, bus or unit) and gathers utilisation
// statistics; its final memory must match the reference interpreter, which
// the integration tests assert for every kernel × architecture pair.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/interp.hpp"
#include "sched/context.hpp"

namespace rsp::sim {

struct UtilizationStats {
  int cycles = 0;
  std::int64_t pe_issue_slots = 0;     ///< total PE-cycles available
  std::int64_t pe_issues = 0;          ///< PE-cycles actually used
  std::int64_t bus_reads = 0;
  std::int64_t bus_writes = 0;
  std::int64_t shared_unit_slots = 0;  ///< unit issue slots available
  std::int64_t shared_unit_issues = 0; ///< multiplications issued to units
  std::int64_t mult_ops = 0;

  double pe_utilization() const {
    return pe_issue_slots ? static_cast<double>(pe_issues) / pe_issue_slots
                          : 0.0;
  }
  double shared_unit_utilization() const {
    return shared_unit_slots
               ? static_cast<double>(shared_unit_issues) / shared_unit_slots
               : 0.0;
  }
};

struct SimResult {
  UtilizationStats stats;
  std::vector<std::int64_t> values;  ///< final value of every context op
};

class Machine {
 public:
  explicit Machine(ir::DatapathMode mode = ir::DatapathMode::kExact)
      : mode_(mode) {}

  /// Runs the context to completion, mutating `memory`.
  /// Throws rsp::Error on any structural violation encountered while
  /// executing (double-booked PE/bus/unit, operand not ready, ...).
  SimResult run(const sched::ConfigurationContext& context,
                ir::Memory& memory) const;

 private:
  ir::DatapathMode mode_;
};

}  // namespace rsp::sim
