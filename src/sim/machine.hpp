// Cycle-accurate functional simulator of the RSP array.
//
// Executes a configuration context cycle by cycle against a data memory:
// PEs read operands from producer output registers, loads/stores go over
// the row buses, shared multiplications flow through the bus switch into
// the (possibly pipelined) shared unit and return `latency` cycles later.
// The simulator validates structural legality as it runs (it refuses
// contexts that oversubscribe a PE, bus or unit) and gathers utilisation
// statistics; its final memory must match the reference interpreter, which
// the integration tests assert for every kernel × architecture pair.
//
// Two engines produce bit-identical results (values, stats, final memory,
// and therefore byte-identical VCD dumps — see docs/SIMULATOR.md):
//
//   * kDense — the reference loop below: every cycle visits the full
//     per-cycle bookkeeping whether or not anything is scheduled.
//   * kEvent — compiles the context into an immutable sim::SimProgram
//     (src/sim/program.hpp) whose structural legality is verified once,
//     then executes only the cycles and resources with scheduled activity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/interp.hpp"
#include "sched/context.hpp"

namespace rsp::sim {

struct UtilizationStats {
  int cycles = 0;
  std::int64_t pe_issue_slots = 0;     ///< total PE-cycles available
  std::int64_t pe_issues = 0;          ///< PE-cycles actually used
  std::int64_t bus_reads = 0;
  std::int64_t bus_writes = 0;
  std::int64_t shared_unit_slots = 0;  ///< unit issue slots available
  std::int64_t shared_unit_issues = 0; ///< multiplications issued to units
  std::int64_t mult_ops = 0;

  double pe_utilization() const {
    return pe_issue_slots ? static_cast<double>(pe_issues) / pe_issue_slots
                          : 0.0;
  }
  double shared_unit_utilization() const {
    return shared_unit_slots
               ? static_cast<double>(shared_unit_issues) / shared_unit_slots
               : 0.0;
  }

  bool operator==(const UtilizationStats&) const = default;
};

struct SimResult {
  UtilizationStats stats;
  std::vector<std::int64_t> values;  ///< final value of every context op

  bool operator==(const SimResult&) const = default;
};

/// Simulation engine selection. Both engines are bit-identical on every
/// legal context; kDense is the straight-line reference, kEvent the
/// production path for sparse (low-utilization) schedules and batched
/// multi-memory simulation.
enum class SimEngine { kDense, kEvent };

/// "dense" / "event" — the wire and CLI spelling of the engine.
const char* engine_name(SimEngine engine);

/// Inverse of engine_name; throws InvalidArgumentError on anything else.
SimEngine parse_sim_engine(const std::string& name);

/// Entry-path validation shared by both engines: every op's issue cycle
/// must lie in [0, length) and every operand must reference an in-range
/// producer (or be an immediate). Violations throw InvalidArgumentError
/// naming the op — out-of-range indices would otherwise walk off the
/// per-cycle issue table. ConfigurationContext establishes these
/// invariants at construction; the simulator re-checks so it never trusts
/// a context it did not build.
void validate_context(const sched::ConfigurationContext& context);

class Machine {
 public:
  explicit Machine(ir::DatapathMode mode = ir::DatapathMode::kExact,
                   SimEngine engine = SimEngine::kDense)
      : mode_(mode), engine_(engine) {}

  /// Runs the context to completion, mutating `memory`.
  /// Throws rsp::Error on any structural violation encountered while
  /// executing (double-booked PE/bus/unit, operand not ready, ...).
  SimResult run(const sched::ConfigurationContext& context,
                ir::Memory& memory) const;

  SimEngine engine() const { return engine_; }

 private:
  SimResult run_dense(const sched::ConfigurationContext& context,
                      ir::Memory& memory) const;

  ir::DatapathMode mode_;
  SimEngine engine_;
};

}  // namespace rsp::sim
