// Activity-based energy/power estimation — the paper's stated future work
// ("the domain-specific optimization may also be effective for reducing
// power consumption", §6), built out as an extension.
//
// Model: CMOS-style split into dynamic energy (per component activation,
// proportional to the component's synthesized area) and static leakage
// (proportional to total area and elapsed time). Activations come from the
// scheduled configuration context, so the numbers reflect exactly the ops
// the mapped kernel performs:
//   * every issued op toggles its PE's mux front-end and output register;
//   * ALU-class ops (add/sub/abs) toggle the ALU, shifts the shifter;
//   * multiplications toggle a multiplier (private or shared) and, when
//     shared, the issuing PE's bus switch;
//   * every PE reads one configuration word per cycle;
//   * loads/stores toggle a row bus driver.
// Units are normalised (1 energy unit = 1 slice·activation); results are
// meaningful as *ratios* between architectures, like the paper's area and
// delay ratios.
#pragma once

#include "arch/presets.hpp"
#include "sched/context.hpp"
#include "synth/synthesis.hpp"

namespace rsp::power {

struct EnergyBreakdown {
  double mux = 0.0;
  double alu = 0.0;
  double shift = 0.0;
  double multiplier = 0.0;
  double output_regs = 0.0;
  double bus_switch = 0.0;
  double config_cache = 0.0;
  double data_buses = 0.0;
  double leakage = 0.0;

  double dynamic_total() const {
    return mux + alu + shift + multiplier + output_regs + bus_switch +
           config_cache + data_buses;
  }
  double total() const { return dynamic_total() + leakage; }
};

struct PowerReport {
  EnergyBreakdown energy;      ///< normalised energy for the whole kernel
  double execution_time_ns = 0.0;
  double average_power = 0.0;  ///< energy units per ns
};

class PowerModel {
 public:
  explicit PowerModel(synth::SynthesisModel synth = synth::SynthesisModel())
      : synth_(std::move(synth)) {}

  /// Energy scale factors (dimensionless tuning knobs).
  struct Factors {
    double activation_per_slice = 1.0;   ///< dynamic energy per slice-toggle
    /// Static energy per slice per ns. The default puts leakage at roughly
    /// a quarter of total energy on the base design — representative of the
    /// 130 nm FPGA era the paper targets.
    double leakage_per_slice_ns = 1.5e-3;
    double cache_read_slices = 12.0;     ///< cost of one context-word read
    double bus_toggle_slices = 20.0;     ///< cost of one row-bus transfer
  };

  PowerReport estimate(const sched::ConfigurationContext& context) const;

  const Factors& factors() const { return factors_; }
  void set_factors(Factors f) { factors_ = f; }

 private:
  synth::SynthesisModel synth_;
  Factors factors_;
};

}  // namespace rsp::power
