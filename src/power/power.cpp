#include "power/power.hpp"

#include "arch/resources.hpp"

namespace rsp::power {

PowerReport PowerModel::estimate(
    const sched::ConfigurationContext& context) const {
  const arch::Architecture& a = context.architecture();
  const synth::ComponentLibrary& lib = synth_.area_model().library();
  const double k = factors_.activation_per_slice;

  const double mux_area =
      lib.component(arch::Resource::kMultiplexer).area_slices;
  const double alu_area = lib.component(arch::Resource::kAlu).area_slices;
  const double shift_area =
      lib.component(arch::Resource::kShiftLogic).area_slices;
  const double mult_area =
      lib.component(arch::Resource::kArrayMultiplier).area_slices;
  const double reg_area =
      lib.component(arch::Resource::kOutputRegister).area_slices;
  const double switch_area =
      a.shares_multiplier()
          ? lib.bus_switch(a.sharing.units_reachable_per_pe()).area_slices
          : 0.0;

  EnergyBreakdown e;
  for (const sched::ScheduledOp& op : context.ops()) {
    if (op.kind == ir::OpKind::kNop) continue;
    // Every real op uses the operand front-end and the output register.
    e.mux += k * mux_area;
    e.output_regs += k * reg_area;
    switch (op.kind) {
      case ir::OpKind::kAdd:
      case ir::OpKind::kSub:
      case ir::OpKind::kAbs:
        e.alu += k * alu_area;
        break;
      case ir::OpKind::kShift:
        e.shift += k * shift_area;
        break;
      case ir::OpKind::kMult:
        e.multiplier += k * mult_area;
        if (a.shares_multiplier()) e.bus_switch += k * switch_area;
        break;
      case ir::OpKind::kLoad:
      case ir::OpKind::kStore:
        e.data_buses += k * factors_.bus_toggle_slices;
        break;
      default:
        break;
    }
  }

  // Every PE fetches one configuration word per cycle while the context
  // runs (loop pipelining: per-PE control).
  e.config_cache += k * factors_.cache_read_slices *
                    static_cast<double>(context.length()) *
                    a.array.num_pes();

  PowerReport report;
  report.execution_time_ns =
      static_cast<double>(context.length()) * synth_.clock_ns(a);
  // Leakage scales with the synthesized area of the whole array.
  e.leakage = factors_.leakage_per_slice_ns * synth_.area(a) *
              report.execution_time_ns;
  report.energy = e;
  report.average_power =
      report.execution_time_ns > 0
          ? report.energy.total() / report.execution_time_ns
          : 0.0;
  return report;
}

}  // namespace rsp::power
