#include "kernels/dsp.hpp"

#include "ir/builder.hpp"

namespace rsp::kernels {

namespace {

arch::ArraySpec paper_array() { return arch::ArraySpec{}; }

// "DCT-like" rotation coefficients and down-shift (integerised butterfly).
constexpr std::int64_t kC1 = 5, kC2 = 3, kC3 = 2, kC4 = 4;
constexpr int kDctShift = -2;  // arithmetic right shift by 2

// 2D-FDCT iteration decode: 64 iterations = 2 passes × 8 lines × 4
// butterfly pairs. The 8×8 block, its row-pass intermediate and the output
// live in one "buf" array at offsets 0 / 64 / 128 so a single index
// function can address both passes.
struct FdctPoint {
  std::int64_t in_p, in_q, out_p, out_q;
};

FdctPoint fdct_point(std::int64_t it) {
  const std::int64_t pass = it / 32;
  const std::int64_t idx = it % 32;
  const std::int64_t line = idx / 4;
  const std::int64_t pair = idx % 4;
  const std::int64_t mirror = 7 - pair;
  FdctPoint p;
  if (pass == 0) {  // row pass: block (offset 0) → tmp (offset 64)
    p.in_p = line * 8 + pair;
    p.in_q = line * 8 + mirror;
    p.out_p = 64 + line * 8 + pair;
    p.out_q = 64 + line * 8 + mirror;
  } else {  // column pass: tmp (offset 64) → out (offset 128)
    p.in_p = 64 + pair * 8 + line;
    p.in_q = 64 + mirror * 8 + line;
    p.out_p = 128 + pair * 8 + line;
    p.out_q = 128 + mirror * 8 + line;
  }
  return p;
}

std::pair<std::int64_t, std::int64_t> fdct_butterfly(std::int64_t a,
                                                     std::int64_t b) {
  const std::int64_t u = a + b;
  const std::int64_t v = a - b;
  const std::int64_t s = kC1 * u + kC2 * v;
  const std::int64_t d = kC3 * u - kC4 * v;
  return {s >> 2, d >> 2};
}

}  // namespace

// ---------------------------------------------------------------------------
// 2D-FDCT: separable 8×8 forward DCT, butterfly-pair granularity.
// Four multiplications per iteration issued back to back — with 4-lane
// waves this is the multiplier-pressure kernel of the suite (paper Table 3
// reports a peak of 16 concurrent multiplications and Table 5 the only
// RS#2 stalls).
// ---------------------------------------------------------------------------
Workload make_fdct() {
  constexpr std::int64_t kIters = 64;
  ir::GraphBuilder b;
  auto a = b.load("buf", [](std::int64_t it) { return fdct_point(it).in_p; },
                  "in[p]");
  auto bb = b.load("buf", [](std::int64_t it) { return fdct_point(it).in_q; },
                   "in[q]");
  auto u = b.add(a, bb, "u");
  auto v = b.sub(a, bb, "v");
  auto c1 = b.constant(kC1);
  auto c2 = b.constant(kC2);
  auto c3 = b.constant(kC3);
  auto c4 = b.constant(kC4);
  auto m1 = b.mult(c1, u);
  auto m2 = b.mult(c2, v);
  auto m3 = b.mult(c3, u);
  auto m4 = b.mult(c4, v);
  auto s = b.add(m1, m2);
  auto d = b.sub(m3, m4);
  auto o1 = b.shift(s, kDctShift, "s>>2");
  auto o2 = b.shift(d, kDctShift, "d>>2");
  b.store("buf", [](std::int64_t it) { return fdct_point(it).out_p; }, o1,
          "out[p]");
  b.store("buf", [](std::int64_t it) { return fdct_point(it).out_q; }, o2,
          "out[q]");

  Workload w{"2D-FDCT",
             ir::LoopKernel("2D-FDCT", b.take(), kIters),
             paper_array(),
             {},
             {},
             {},
             {}};
  w.hints.lanes = 4;
  w.hints.stagger = 1;
  w.hints.columns = 8;
  w.hints.cycle_row_bands = false;  // concentrate on rows 0-3: peak 16 mults
  w.setup = [](ir::Memory& m) {
    std::vector<std::int64_t> buf =
        deterministic_data("fdct.block", 64, -128, 127);
    buf.resize(192, 0);
    m.set("buf", std::move(buf));
  };
  w.golden = [](ir::Memory& m) {
    for (std::int64_t it = 0; it < kIters; ++it) {
      const FdctPoint p = fdct_point(it);
      const auto [op, oq] =
          fdct_butterfly(m.read("buf", p.in_p), m.read("buf", p.in_q));
      m.write("buf", p.out_p, op);
      m.write("buf", p.out_q, oq);
    }
  };
  return w;
}

// ---------------------------------------------------------------------------
// SAD: sum of absolute differences over a 16×16 block (H.263 motion
// estimation). 256 iterations, 4 per PE, local accumulation + global tree
// reduction. No multiplications: on RSP architectures the whole gain is the
// faster clock — the paper's best case (35.7 % with RSP#1).
// ---------------------------------------------------------------------------
Workload make_sad() {
  constexpr std::int64_t kIters = 256;
  ir::GraphBuilder b;
  auto cur = b.load("cur", [](std::int64_t k) { return k; }, "cur[k]");
  auto ref = b.load("ref", [](std::int64_t k) { return k; }, "ref[k]");
  auto d = b.sub(cur, ref);
  auto ad = b.abs(d, "|d|");
  auto acc = b.accumulate(ad, 0, /*distance=*/64, "acc");

  Workload w{
      "SAD", ir::LoopKernel("SAD", b.take(), kIters), paper_array(),
      {},    {},
      {},    {}};
  w.hints.lanes = 8;
  w.hints.stagger = 1;
  w.hints.columns = 8;
  w.reduction.scope = sched::ReductionSpec::Scope::kAll;
  w.reduction.source = acc;
  w.reduction.array = "sad";
  w.reduction.index0 = 0;
  w.setup = [](ir::Memory& m) {
    m.set("cur", deterministic_data("sad.cur", kIters, 0, 255));
    m.set("ref", deterministic_data("sad.ref", kIters, 0, 255));
    m.allocate("sad", 1);
  };
  w.golden = [](ir::Memory& m) {
    std::int64_t sum = 0;
    for (std::int64_t k = 0; k < kIters; ++k) {
      const std::int64_t d = m.read("cur", k) - m.read("ref", k);
      sum += d < 0 ? -d : d;
    }
    m.write("sad", 0, sum);
  };
  return w;
}

// ---------------------------------------------------------------------------
// MVM: y = A·x with an 8×8 matrix. PE(r,c) computes A[r][c]·x[c]; each
// array row tree-reduces its 8 products into y[r]. One multiplication per
// iteration, peaking at 8 concurrent (Table 3).
// ---------------------------------------------------------------------------
Workload make_mvm() {
  constexpr std::int64_t kIters = 64;
  ir::GraphBuilder b;
  // iteration i: lane r = i%8 (array row), wave c = i/8 (matrix column).
  auto aa = b.load(
      "A", [](std::int64_t i) { return (i % 8) * 8 + i / 8; }, "A[r][c]");
  auto x = b.load("x", [](std::int64_t i) { return i / 8; }, "x[c]");
  auto prod = b.mult(aa, x, "A*x");

  Workload w{
      "MVM", ir::LoopKernel("MVM", b.take(), kIters), paper_array(),
      {},    {},
      {},    {}};
  w.hints.lanes = 8;
  w.hints.stagger = 1;
  w.hints.columns = 8;
  w.reduction.scope = sched::ReductionSpec::Scope::kPerRow;
  w.reduction.source = prod;
  w.reduction.array = "y";
  w.reduction.index0 = 0;
  w.setup = [](ir::Memory& m) {
    m.set("A", deterministic_data("mvm.A", 64, -30, 30));
    m.set("x", deterministic_data("mvm.x", 8, -30, 30));
    m.allocate("y", 8);
  };
  w.golden = [](ir::Memory& m) {
    for (int r = 0; r < 8; ++r) {
      std::int64_t sum = 0;
      for (int c = 0; c < 8; ++c)
        sum += m.read("A", r * 8 + c) * m.read("x", c);
      m.write("y", r, sum);
    }
  };
  return w;
}

// ---------------------------------------------------------------------------
// FFT multiplication loop: one complex multiply per iteration,
//   t = w · x  (tr = wr·xr − wi·xi, ti = wr·xi + wi·xr),  32 iterations.
// ---------------------------------------------------------------------------
Workload make_fft() {
  constexpr std::int64_t kIters = 32;
  ir::GraphBuilder b;
  auto xr = b.load("xr", [](std::int64_t k) { return k; }, "xr[k]");
  auto wr = b.load("wr", [](std::int64_t k) { return k; }, "wr[k]");
  auto m1 = b.mult(xr, wr, "xr*wr");
  auto xi = b.load("xi", [](std::int64_t k) { return k; }, "xi[k]");
  auto wi = b.load("wi", [](std::int64_t k) { return k; }, "wi[k]");
  auto m2 = b.mult(xi, wi, "xi*wi");
  auto tr = b.sub(m1, m2, "tr");
  auto m3 = b.mult(xr, wi, "xr*wi");
  auto m4 = b.mult(xi, wr, "xi*wr");
  auto ti = b.add(m3, m4, "ti");
  b.store("tr", [](std::int64_t k) { return k; }, tr);
  b.store("ti", [](std::int64_t k) { return k; }, ti);

  Workload w{
      "FFT", ir::LoopKernel("FFT", b.take(), kIters), paper_array(),
      {},    {},
      {},    {}};
  w.hints.lanes = 4;
  w.hints.stagger = 2;
  w.hints.columns = 8;
  w.hints.cycle_row_bands = true;
  w.setup = [](ir::Memory& m) {
    m.set("xr", deterministic_data("fft.xr", kIters, -40, 40));
    m.set("xi", deterministic_data("fft.xi", kIters, -40, 40));
    m.set("wr", deterministic_data("fft.wr", kIters, -40, 40));
    m.set("wi", deterministic_data("fft.wi", kIters, -40, 40));
    m.allocate("tr", kIters);
    m.allocate("ti", kIters);
  };
  w.golden = [](ir::Memory& m) {
    for (std::int64_t k = 0; k < kIters; ++k) {
      m.write("tr", k,
              m.read("wr", k) * m.read("xr", k) -
                  m.read("wi", k) * m.read("xi", k));
      m.write("ti", k,
              m.read("wr", k) * m.read("xi", k) +
                  m.read("wi", k) * m.read("xr", k));
    }
  };
  return w;
}

}  // namespace rsp::kernels
