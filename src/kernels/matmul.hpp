// Matrix multiplication — the paper's running example (§3, Figs. 2/3/6):
//   Z[i][j] = C · Σ_k X[i][k]·Y[k][j]
// On an n×n array, iteration (i,j) runs on PE(row=i, col=j): column j of
// the array computes column j of Z, columns start staggered — exactly the
// Fig. 2 loop-pipelining schedule. With the multiplier 2-stage pipelined
// the same program needs half the concurrent multipliers (Fig. 6).
#pragma once

#include "kernels/workload.hpp"

namespace rsp::kernels {

/// Order-n matrix multiply mapped on an n×n array (paper uses n = 4).
/// `scale` is the constant C applied to every dot product.
Workload make_matmul(int n = 4, std::int64_t scale = 2);

}  // namespace rsp::kernels
