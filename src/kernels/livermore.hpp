// Livermore-loop kernels used in the paper's Table 4:
//   Hydro         (LL1, hydro fragment)          — mult, add; 32 iterations
//   ICCG          (LL2, incomplete Cholesky CG)  — mult, sub; 32 iterations
//   Tri-diagonal  (LL5, tri-diagonal elimination)— mult, sub; 64 iterations
//   Inner product (LL3)                          — mult, add; 128 iterations
//   State         (LL7, equation of state)       — mult, add; 16 iterations
//
// Substitutions (documented in DESIGN.md): the ICCG and Tri-diagonal loops
// have loop-carried recurrences through x[]; the paper maps them with 4
// multiplications per cycle, which is only possible once the recurrence is
// relaxed. We keep the op mix and data shape but read the recurrence input
// from a separate pre-computed array, as a blocked solver pass would.
#pragma once

#include "kernels/workload.hpp"

namespace rsp::kernels {

Workload make_hydro();
Workload make_iccg();
Workload make_tridiagonal();
Workload make_inner_product();
Workload make_state();

}  // namespace rsp::kernels
