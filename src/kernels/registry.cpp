#include "kernels/registry.hpp"

#include "kernels/dsp.hpp"
#include "kernels/h264.hpp"
#include "kernels/livermore.hpp"
#include "kernels/matmul.hpp"
#include "util/error.hpp"

namespace rsp::kernels {

std::vector<Workload> livermore_suite() {
  std::vector<Workload> out;
  out.push_back(make_hydro());
  out.push_back(make_iccg());
  out.push_back(make_tridiagonal());
  out.push_back(make_inner_product());
  out.push_back(make_state());
  return out;
}

std::vector<Workload> dsp_suite() {
  std::vector<Workload> out;
  out.push_back(make_fdct());
  out.push_back(make_sad());
  out.push_back(make_mvm());
  out.push_back(make_fft());
  return out;
}

std::vector<Workload> paper_suite() {
  std::vector<Workload> out = livermore_suite();
  std::vector<Workload> dsp = dsp_suite();
  for (Workload& w : dsp) out.push_back(std::move(w));
  return out;
}

std::vector<Workload> full_catalogue() {
  std::vector<Workload> out = paper_suite();
  for (Workload& w : h264_suite()) out.push_back(std::move(w));
  out.push_back(make_matmul(4));
  return out;
}

Workload find_workload(const std::string& name) {
  for (Workload& w : paper_suite())
    if (w.name == name) return w;
  throw NotFoundError("unknown workload '" + name + "'");
}

Workload find_in_catalogue(const std::string& name) {
  return find_in_catalogue(full_catalogue(), name);
}

const Workload& find_in_catalogue(const std::vector<Workload>& catalogue,
                                  const std::string& name) {
  for (const Workload& w : catalogue)
    if (w.name == name) return w;
  throw NotFoundError("unknown kernel '" + name +
                      "' (run `rsp_cli list` for the catalogue)");
}

}  // namespace rsp::kernels
