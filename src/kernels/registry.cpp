#include "kernels/registry.hpp"

#include <map>
#include <mutex>

#include "gen/generator.hpp"
#include "kernels/dsp.hpp"
#include "kernels/h264.hpp"
#include "kernels/livermore.hpp"
#include "kernels/matmul.hpp"
#include "util/error.hpp"

namespace rsp::kernels {

namespace {

std::string name_list(const std::vector<Workload>& workloads) {
  std::string names;
  for (const Workload& w : workloads) {
    if (!names.empty()) names += ", ";
    names += w.name;
  }
  return names;
}

// Materialised `gen:<seed>` workloads. The cache guarantees the const-ref
// find_in_catalogue overload hands out stable references (std::map nodes
// never move) under concurrent Service dispatch. Always built with the
// default GeneratorConfig: runtime::MappingCache keys on kernel name +
// content hash but cannot see IndexFn closures, so one gen name must always
// denote one workload.
const Workload& generated_workload(std::uint64_t seed) {
  static std::mutex mutex;
  static std::map<std::uint64_t, Workload> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(seed);
  if (it == cache.end()) {
    gen::GeneratorConfig config;
    config.seed = seed;
    it = cache.emplace(seed, gen::generate_workload(config)).first;
  }
  return it->second;
}

}  // namespace

std::vector<Workload> livermore_suite() {
  std::vector<Workload> out;
  out.push_back(make_hydro());
  out.push_back(make_iccg());
  out.push_back(make_tridiagonal());
  out.push_back(make_inner_product());
  out.push_back(make_state());
  return out;
}

std::vector<Workload> dsp_suite() {
  std::vector<Workload> out;
  out.push_back(make_fdct());
  out.push_back(make_sad());
  out.push_back(make_mvm());
  out.push_back(make_fft());
  return out;
}

std::vector<Workload> paper_suite() {
  std::vector<Workload> out = livermore_suite();
  std::vector<Workload> dsp = dsp_suite();
  for (Workload& w : dsp) out.push_back(std::move(w));
  return out;
}

std::vector<Workload> full_catalogue() {
  std::vector<Workload> out = paper_suite();
  for (Workload& w : h264_suite()) out.push_back(std::move(w));
  out.push_back(make_matmul(4));
  return out;
}

Workload find_workload(const std::string& name) {
  std::vector<Workload> suite = paper_suite();
  for (Workload& w : suite)
    if (w.name == name) return w;
  throw NotFoundError("unknown workload '" + name + "'; the paper suite is " +
                      name_list(suite) +
                      " (generated kernels are addressed as gen:<seed>)");
}

Workload find_in_catalogue(const std::string& name) {
  return find_in_catalogue(full_catalogue(), name);
}

const Workload& find_in_catalogue(const std::vector<Workload>& catalogue,
                                  const std::string& name) {
  for (const Workload& w : catalogue)
    if (w.name == name) return w;
  if (const std::optional<std::uint64_t> seed = gen::parse_gen_name(name))
    return generated_workload(*seed);
  throw NotFoundError("unknown kernel '" + name + "'; available: " +
                      name_list(catalogue) +
                      ", or gen:<seed> for a generated kernel");
}

}  // namespace rsp::kernels
