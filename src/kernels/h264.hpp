// H.264 encoder kernels — the paper's §6 closes with "we are currently
// working on implementing H.264 encoder on our architecture template";
// this module builds that workload set as an extension:
//   * 4×4 SAD          — motion estimation cost (abs/add, no multiplier)
//   * 4×4 Hadamard SATD— transform-domain cost (add/sub/abs/shift)
//   * luma half-pel    — 6-tap interpolation filter (mult/add/sub/shift)
//   * 4×4 integer DCT  — H.264 core transform (multiplier-free by design)
// Two of the four kernels never multiply: exactly the workload class where
// the paper's RSP template wins the most (the SAD observation of §5.3).
#pragma once

#include "kernels/workload.hpp"

namespace rsp::kernels {

Workload make_h264_sad4x4();
Workload make_h264_satd4x4();
Workload make_h264_halfpel();
Workload make_h264_idct4x4();

/// All four, in the order above.
std::vector<Workload> h264_suite();

}  // namespace rsp::kernels
