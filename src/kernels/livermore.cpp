#include "kernels/livermore.hpp"

#include "ir/builder.hpp"

namespace rsp::kernels {

namespace {

arch::ArraySpec paper_array() { return arch::ArraySpec{}; }  // 8×8, 2R/1W

constexpr std::int64_t kQ = 5, kR = 3, kT = 7;

}  // namespace

// ---------------------------------------------------------------------------
// Hydro (LL1): x[k] = q + y[k]·(r·z[k+10] + t·z[k+11]),  k = 0..31.
//
// Body slots are ordered so that, with 3-lane waves, at most two waves
// multiply in the same cycle: the paper reports a peak of 6 concurrent
// multiplications (Table 3) and RS#1 stalls while RS#2 does not (Table 4).
// ---------------------------------------------------------------------------
Workload make_hydro() {
  constexpr std::int64_t kIters = 32;
  ir::GraphBuilder b;
  auto z10 = b.load("z", [](std::int64_t k) { return k + 10; }, "z[k+10]");
  auto z11 = b.load("z", [](std::int64_t k) { return k + 11; }, "z[k+11]");
  auto cr = b.constant(kR, "r");
  auto y = b.load("y", [](std::int64_t k) { return k; }, "y[k]");
  auto ct = b.constant(kT, "t");
  auto m1 = b.mult(cr, z10, "r*z[k+10]");
  auto cq = b.constant(kQ, "q");
  auto m2 = b.mult(ct, z11, "t*z[k+11]");
  auto sum = b.add(m1, m2);
  b.nop();  // spaces the third multiplication one slot apart
  auto m3 = b.mult(y, sum, "y*(...)");
  auto res = b.add(cq, m3);
  b.store("x", [](std::int64_t k) { return k; }, res, "x[k]");

  Workload w{
      "Hydro",
      ir::LoopKernel("Hydro", b.take(), kIters),
      paper_array(),
      {},
      {},
      {},
      {}};
  w.hints.lanes = 3;
  w.hints.stagger = 2;
  w.hints.columns = 8;
  w.hints.cycle_row_bands = true;
  w.setup = [](ir::Memory& m) {
    m.set("y", deterministic_data("hydro.y", kIters, -20, 20));
    m.set("z", deterministic_data("hydro.z", kIters + 11, -20, 20));
    m.allocate("x", kIters);
  };
  w.golden = [](ir::Memory& m) {
    for (std::int64_t k = 0; k < kIters; ++k) {
      const std::int64_t v =
          kQ + m.read("y", k) *
                   (kR * m.read("z", k + 10) + kT * m.read("z", k + 11));
      m.write("x", k, v);
    }
  };
  return w;
}

// ---------------------------------------------------------------------------
// ICCG (LL2-shaped): x[k] = q[k] − v[k]·w[k],  k = 0..31.
// Single multiplication per iteration; 4-lane waves → peak 4 concurrent
// multiplications, stall-free on every sharing plan (Table 4).
// ---------------------------------------------------------------------------
Workload make_iccg() {
  constexpr std::int64_t kIters = 32;
  ir::GraphBuilder b;
  auto v = b.load("v", [](std::int64_t k) { return k; }, "v[k]");
  auto wv = b.load("w", [](std::int64_t k) { return k; }, "w[k]");
  auto m = b.mult(v, wv, "v*w");
  auto q = b.load("q", [](std::int64_t k) { return k; }, "q[k]");
  auto d = b.sub(q, m);
  b.store("x", [](std::int64_t k) { return k; }, d, "x[k]");

  Workload w{
      "ICCG", ir::LoopKernel("ICCG", b.take(), kIters), paper_array(),
      {},     {},
      {},     {}};
  w.hints.lanes = 4;
  w.hints.stagger = 2;
  w.hints.columns = 8;
  w.hints.cycle_row_bands = true;
  w.setup = [](ir::Memory& m) {
    m.set("v", deterministic_data("iccg.v", kIters, -30, 30));
    m.set("w", deterministic_data("iccg.w", kIters, -30, 30));
    m.set("q", deterministic_data("iccg.q", kIters, -100, 100));
    m.allocate("x", kIters);
  };
  w.golden = [](ir::Memory& m) {
    for (std::int64_t k = 0; k < kIters; ++k)
      m.write("x", k, m.read("q", k) - m.read("v", k) * m.read("w", k));
  };
  return w;
}

// ---------------------------------------------------------------------------
// Tri-diagonal (LL5-shaped): x[i] = z[i]·(y[i] − w[i]),  i = 0..63.
// ---------------------------------------------------------------------------
Workload make_tridiagonal() {
  constexpr std::int64_t kIters = 64;
  ir::GraphBuilder b;
  auto y = b.load("y", [](std::int64_t i) { return i; }, "y[i]");
  auto wv = b.load("w", [](std::int64_t i) { return i; }, "w[i]");
  auto d = b.sub(y, wv);
  auto z = b.load("z", [](std::int64_t i) { return i; }, "z[i]");
  auto m = b.mult(z, d, "z*(y-w)");
  b.store("x", [](std::int64_t i) { return i; }, m, "x[i]");

  Workload w{"Tri-diagonal",
             ir::LoopKernel("Tri-diagonal", b.take(), kIters),
             paper_array(),
             {},
             {},
             {},
             {}};
  w.hints.lanes = 4;
  w.hints.stagger = 1;
  w.hints.columns = 8;
  w.hints.cycle_row_bands = true;
  w.setup = [](ir::Memory& m) {
    m.set("y", deterministic_data("tri.y", kIters, -50, 50));
    m.set("w", deterministic_data("tri.w", kIters, -50, 50));
    m.set("z", deterministic_data("tri.z", kIters, -20, 20));
    m.allocate("x", kIters);
  };
  w.golden = [](ir::Memory& m) {
    for (std::int64_t i = 0; i < kIters; ++i)
      m.write("x", i,
              m.read("z", i) * (m.read("y", i) - m.read("w", i)));
  };
  return w;
}

// ---------------------------------------------------------------------------
// Inner product (LL3): sum = Σ x[k]·y[k],  k = 0..127.
// Two iterations per PE (128 on 64 PEs); each PE accumulates locally
// (loop-carried distance 64 = lanes×columns keeps the chain on one PE);
// a tree reduction over columns and rows produces the scalar.
// ---------------------------------------------------------------------------
Workload make_inner_product() {
  constexpr std::int64_t kIters = 128;
  ir::GraphBuilder b;
  auto x = b.load("x", [](std::int64_t k) { return k; }, "x[k]");
  auto y = b.load("y", [](std::int64_t k) { return k; }, "y[k]");
  auto m = b.mult(x, y, "x*y");
  auto acc = b.accumulate(m, 0, /*distance=*/64, "acc");

  Workload w{"Inner product",
             ir::LoopKernel("Inner product", b.take(), kIters),
             paper_array(),
             {},
             {},
             {},
             {}};
  w.hints.lanes = 8;
  w.hints.stagger = 1;
  w.hints.columns = 8;
  w.reduction.scope = sched::ReductionSpec::Scope::kAll;
  w.reduction.source = acc;
  w.reduction.array = "sum";
  w.reduction.index0 = 0;
  w.setup = [](ir::Memory& m) {
    m.set("x", deterministic_data("inner.x", kIters, -25, 25));
    m.set("y", deterministic_data("inner.y", kIters, -25, 25));
    m.allocate("sum", 1);
  };
  w.golden = [](ir::Memory& m) {
    std::int64_t sum = 0;
    for (std::int64_t k = 0; k < kIters; ++k)
      sum += m.read("x", k) * m.read("y", k);
    m.write("sum", 0, sum);
  };
  return w;
}

// ---------------------------------------------------------------------------
// State (LL7, equation-of-state fragment), 16 iterations:
//   x[k] = u[k] + r·(z[k] + r·y[k])
//        + t·(u[k+3] + r·(u[k+2] + r·u[k+1])
//        + t·(u[k+6] + r·(u[k+5] + r·u[k+4])))
// Eight multiplications per iteration — the multiplier-hungry kernel that
// stalls hard on RS#1/RSP#1 (paper Table 4: 15/14 stall cycles).
// ---------------------------------------------------------------------------
Workload make_state() {
  constexpr std::int64_t kIters = 16;
  ir::GraphBuilder b;
  auto cr = b.constant(kR, "r");
  auto ct = b.constant(kT, "t");
  auto y = b.load("u", [](std::int64_t k) { return k + 1; }, "u[k+1]");
  auto m1 = b.mult(cr, y, "r*u1");
  auto u2 = b.load("u", [](std::int64_t k) { return k + 2; }, "u[k+2]");
  auto s1 = b.add(u2, m1);
  auto m2 = b.mult(cr, s1);
  auto u3 = b.load("u", [](std::int64_t k) { return k + 3; }, "u[k+3]");
  auto s2 = b.add(u3, m2);
  auto u4 = b.load("u", [](std::int64_t k) { return k + 4; }, "u[k+4]");
  auto m3 = b.mult(cr, u4, "r*u4");
  auto u5 = b.load("u", [](std::int64_t k) { return k + 5; }, "u[k+5]");
  auto s3 = b.add(u5, m3);
  auto m4 = b.mult(cr, s3);
  auto u6 = b.load("u", [](std::int64_t k) { return k + 6; }, "u[k+6]");
  auto s4 = b.add(u6, m4);
  auto m5 = b.mult(ct, s4, "t*(...)");
  auto s5 = b.add(s2, m5);
  auto m6 = b.mult(ct, s5, "t*(...)");
  auto yk = b.load("y", [](std::int64_t k) { return k; }, "y[k]");
  auto m7 = b.mult(cr, yk, "r*y");
  auto zk = b.load("z", [](std::int64_t k) { return k; }, "z[k]");
  auto s6 = b.add(zk, m7);
  auto m8 = b.mult(cr, s6);
  auto u0 = b.load("u", [](std::int64_t k) { return k; }, "u[k]");
  auto s7 = b.add(u0, m8);
  auto res = b.add(s7, m6);
  b.store("x", [](std::int64_t k) { return k; }, res, "x[k]");

  Workload w{
      "State", ir::LoopKernel("State", b.take(), kIters), paper_array(),
      {},      {},
      {},      {}};
  w.hints.lanes = 4;
  w.hints.stagger = 1;
  w.hints.columns = 4;
  w.hints.cycle_row_bands = true;
  w.setup = [](ir::Memory& m) {
    m.set("u", deterministic_data("state.u", kIters + 6, -8, 8));
    m.set("y", deterministic_data("state.y", kIters, -8, 8));
    m.set("z", deterministic_data("state.z", kIters, -8, 8));
    m.allocate("x", kIters);
  };
  w.golden = [](ir::Memory& m) {
    for (std::int64_t k = 0; k < kIters; ++k) {
      auto u = [&](std::int64_t i) { return m.read("u", k + i); };
      const std::int64_t inner2 = u(6) + kR * (u(5) + kR * u(4));
      const std::int64_t inner1 = u(3) + kR * (u(2) + kR * u(1));
      const std::int64_t outer = kT * (inner1 + kT * inner2);
      const std::int64_t head = u(0) + kR * (m.read("z", k) + kR * m.read("y", k));
      m.write("x", k, head + outer);
    }
  };
  return w;
}

}  // namespace rsp::kernels
