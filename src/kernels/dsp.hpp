// DSP kernels of the paper's Table 5:
//   2D-FDCT (H.263 encoder)        — mult, shift, add, sub
//   SAD (H.263 encoder)            — abs, add (no multiplication at all)
//   MVM (matrix-vector multiply)   — mult, add
//   FFT multiplication loop        — add, sub, mult (complex multiply)
#pragma once

#include "kernels/workload.hpp"

namespace rsp::kernels {

Workload make_fdct();
Workload make_sad();
Workload make_mvm();
Workload make_fft();

}  // namespace rsp::kernels
