#include "kernels/workload.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace rsp::kernels {

std::vector<std::int64_t> deterministic_data(const std::string& tag,
                                             std::size_t length,
                                             std::int64_t lo,
                                             std::int64_t hi) {
  if (lo > hi)
    throw InvalidArgumentError("deterministic_data('" + tag +
                               "'): empty range [" + std::to_string(lo) +
                               ", " + std::to_string(hi) + "]");
  // Stable seed from the tag (FNV-1a) and length.
  std::uint64_t seed = 1469598103934665603ull;
  for (char c : tag) {
    seed ^= static_cast<std::uint8_t>(c);
    seed *= 1099511628211ull;
  }
  seed ^= length * 0x9e3779b97f4a7c15ull;
  util::Rng rng(seed);
  std::vector<std::int64_t> data(length);
  for (auto& v : data) v = rng.uniform(lo, hi);
  return data;
}

}  // namespace rsp::kernels
