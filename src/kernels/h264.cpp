#include "kernels/h264.hpp"

#include "ir/builder.hpp"

namespace rsp::kernels {

namespace {
arch::ArraySpec paper_array() { return arch::ArraySpec{}; }
}  // namespace

// ---------------------------------------------------------------------------
// 4×4 SAD over the 16 sub-blocks of a 16×16 macroblock: 256 pixels, one
// |cur − ref| accumulation per iteration, global reduction. Multiplier-free.
// ---------------------------------------------------------------------------
Workload make_h264_sad4x4() {
  constexpr std::int64_t kIters = 256;
  ir::GraphBuilder b;
  auto cur = b.load("cur", [](std::int64_t k) { return k; }, "cur[k]");
  auto ref = b.load("ref", [](std::int64_t k) { return k; }, "ref[k]");
  auto d = b.sub(cur, ref);
  auto ad = b.abs(d);
  auto acc = b.accumulate(ad, 0, 64, "acc");

  Workload w{"H264-SAD4x4",
             ir::LoopKernel("H264-SAD4x4", b.take(), kIters),
             paper_array(),
             {},
             {},
             {},
             {}};
  w.hints.lanes = 8;
  w.hints.columns = 8;
  w.reduction.scope = sched::ReductionSpec::Scope::kAll;
  w.reduction.source = acc;
  w.reduction.array = "sad";
  w.setup = [](ir::Memory& m) {
    m.set("cur", deterministic_data("h264.cur", kIters, 0, 255));
    m.set("ref", deterministic_data("h264.ref", kIters, 0, 255));
    m.allocate("sad", 1);
  };
  w.golden = [](ir::Memory& m) {
    std::int64_t sum = 0;
    for (std::int64_t k = 0; k < kIters; ++k) {
      const std::int64_t d = m.read("cur", k) - m.read("ref", k);
      sum += d < 0 ? -d : d;
    }
    m.write("sad", 0, sum);
  };
  return w;
}

// ---------------------------------------------------------------------------
// 4×4 Hadamard SATD, butterfly-pair granularity: each iteration combines a
// residual pair with a 2-point butterfly and accumulates |sum| + |diff|
// (a faithful op mix for the transform-domain cost; the exact H.264 SATD
// normalisation shift is applied in the final accumulation).
// ---------------------------------------------------------------------------
Workload make_h264_satd4x4() {
  constexpr std::int64_t kIters = 128;  // 256 residuals as pairs
  ir::GraphBuilder b;
  auto x0 = b.load("res", [](std::int64_t k) { return 2 * k; }, "res[2k]");
  auto x1 = b.load("res", [](std::int64_t k) { return 2 * k + 1; },
                   "res[2k+1]");
  auto s = b.add(x0, x1);
  auto d = b.sub(x0, x1);
  auto as = b.abs(s);
  auto ad = b.abs(d);
  auto pair = b.add(as, ad);
  auto half = b.shift(pair, -1, ">>1");  // SATD normalisation
  auto acc = b.accumulate(half, 0, 64, "acc");

  Workload w{"H264-SATD4x4",
             ir::LoopKernel("H264-SATD4x4", b.take(), kIters),
             paper_array(),
             {},
             {},
             {},
             {}};
  w.hints.lanes = 8;
  w.hints.columns = 8;
  w.reduction.scope = sched::ReductionSpec::Scope::kAll;
  w.reduction.source = acc;
  w.reduction.array = "satd";
  w.setup = [](ir::Memory& m) {
    m.set("res", deterministic_data("h264.res", 2 * kIters, -255, 255));
    m.allocate("satd", 1);
  };
  w.golden = [](ir::Memory& m) {
    std::int64_t sum = 0;
    for (std::int64_t k = 0; k < kIters; ++k) {
      const std::int64_t a = m.read("res", 2 * k);
      const std::int64_t b2 = m.read("res", 2 * k + 1);
      const std::int64_t s = a + b2, d = a - b2;
      sum += ((s < 0 ? -s : s) + (d < 0 ? -d : d)) >> 1;
    }
    m.write("satd", 0, sum);
  };
  return w;
}

// ---------------------------------------------------------------------------
// Luma half-pel interpolation: the H.264 6-tap filter
//   h[k] = clip-free core: x[k] − 5·x[k+1] + 20·x[k+2] + 20·x[k+3]
//          − 5·x[k+4] + x[k+5], rounded and down-shifted by 5.
// Two multiplications per tap pair (×5, ×20); 64 output samples.
// ---------------------------------------------------------------------------
Workload make_h264_halfpel() {
  constexpr std::int64_t kIters = 64;
  ir::GraphBuilder b;
  auto x0 = b.load("x", [](std::int64_t k) { return k; }, "x[k]");
  auto x5 = b.load("x", [](std::int64_t k) { return k + 5; }, "x[k+5]");
  auto edge = b.add(x0, x5);
  auto x1 = b.load("x", [](std::int64_t k) { return k + 1; }, "x[k+1]");
  auto x4 = b.load("x", [](std::int64_t k) { return k + 4; }, "x[k+4]");
  auto inner = b.add(x1, x4);
  auto c5 = b.constant(5);
  auto m5 = b.mult(c5, inner, "5*(x1+x4)");
  auto x2 = b.load("x", [](std::int64_t k) { return k + 2; }, "x[k+2]");
  auto x3 = b.load("x", [](std::int64_t k) { return k + 3; }, "x[k+3]");
  auto mid = b.add(x2, x3);
  auto c20 = b.constant(20);
  auto m20 = b.mult(c20, mid, "20*(x2+x3)");
  auto t1 = b.sub(edge, m5);
  auto t2 = b.add(t1, m20);
  auto c16 = b.constant(16);
  auto rounded = b.add(t2, c16);
  auto out = b.shift(rounded, -5, ">>5");
  b.store("h", [](std::int64_t k) { return k; }, out, "h[k]");

  Workload w{"H264-HalfPel",
             ir::LoopKernel("H264-HalfPel", b.take(), kIters),
             paper_array(),
             {},
             {},
             {},
             {}};
  w.hints.lanes = 4;
  w.hints.stagger = 2;
  w.hints.columns = 8;
  w.hints.cycle_row_bands = true;
  w.setup = [](ir::Memory& m) {
    m.set("x", deterministic_data("h264.x", kIters + 5, 0, 255));
    m.allocate("h", kIters);
  };
  w.golden = [](ir::Memory& m) {
    for (std::int64_t k = 0; k < kIters; ++k) {
      const std::int64_t v = m.read("x", k) + m.read("x", k + 5) -
                             5 * (m.read("x", k + 1) + m.read("x", k + 4)) +
                             20 * (m.read("x", k + 2) + m.read("x", k + 3)) +
                             16;
      m.write("h", k, v >> 5);
    }
  };
  return w;
}

// ---------------------------------------------------------------------------
// H.264 4×4 forward integer transform, row-pass butterfly granularity:
// per row [a b c d]:
//   y0 = a+b+c+d; y2 = a-b-c+d; y1 = 2(a-d)+(b-c); y3 = (a-d)-2(b-c)
// Multiplier-free by construction (the ×2 is a shift) — the H.264 design
// choice that makes it a perfect RSP workload.
// ---------------------------------------------------------------------------
Workload make_h264_idct4x4() {
  constexpr std::int64_t kIters = 64;  // 16 blocks × 4 rows
  ir::GraphBuilder b;
  auto a = b.load("blk", [](std::int64_t k) { return 4 * k; }, "a");
  auto bb = b.load("blk", [](std::int64_t k) { return 4 * k + 1; }, "b");
  auto c = b.load("blk", [](std::int64_t k) { return 4 * k + 2; }, "c");
  auto d = b.load("blk", [](std::int64_t k) { return 4 * k + 3; }, "d");
  auto s0 = b.add(a, d);   // a+d
  auto s1 = b.add(bb, c);  // b+c
  auto d0 = b.sub(a, d);   // a-d
  auto d1 = b.sub(bb, c);  // b-c
  auto y0 = b.add(s0, s1);
  auto y2 = b.sub(s0, s1);
  auto d0x2 = b.shift(d0, 1, "2(a-d)");
  auto y1 = b.add(d0x2, d1);
  auto d1x2 = b.shift(d1, 1, "2(b-c)");
  auto y3 = b.sub(d0, d1x2);
  b.store("out", [](std::int64_t k) { return 4 * k; }, y0);
  b.store("out", [](std::int64_t k) { return 4 * k + 1; }, y1);
  b.store("out", [](std::int64_t k) { return 4 * k + 2; }, y2);
  b.store("out", [](std::int64_t k) { return 4 * k + 3; }, y3);

  Workload w{"H264-DCT4x4",
             ir::LoopKernel("H264-DCT4x4", b.take(), kIters),
             paper_array(),
             {},
             {},
             {},
             {}};
  w.hints.lanes = 8;
  w.hints.stagger = 1;
  w.hints.columns = 8;
  w.setup = [](ir::Memory& m) {
    m.set("blk", deterministic_data("h264.blk", 4 * kIters, -255, 255));
    m.allocate("out", 4 * kIters);
  };
  w.golden = [](ir::Memory& m) {
    for (std::int64_t k = 0; k < kIters; ++k) {
      const std::int64_t a = m.read("blk", 4 * k);
      const std::int64_t b2 = m.read("blk", 4 * k + 1);
      const std::int64_t c = m.read("blk", 4 * k + 2);
      const std::int64_t d = m.read("blk", 4 * k + 3);
      m.write("out", 4 * k, a + b2 + c + d);
      m.write("out", 4 * k + 1, 2 * (a - d) + (b2 - c));
      m.write("out", 4 * k + 2, a - b2 - c + d);
      m.write("out", 4 * k + 3, (a - d) - 2 * (b2 - c));
    }
  };
  return w;
}

std::vector<Workload> h264_suite() {
  std::vector<Workload> out;
  out.push_back(make_h264_sad4x4());
  out.push_back(make_h264_satd4x4());
  out.push_back(make_h264_halfpel());
  out.push_back(make_h264_idct4x4());
  return out;
}

}  // namespace rsp::kernels
