// The paper's kernel suite in table order, plus name lookup.
#pragma once

#include <vector>

#include "kernels/workload.hpp"

namespace rsp::kernels {

/// Table 4 kernels: Hydro, ICCG, Tri-diagonal, Inner product, State.
std::vector<Workload> livermore_suite();

/// Table 5 kernels: 2D-FDCT, SAD, MVM, FFT.
std::vector<Workload> dsp_suite();

/// All nine kernels in paper order (Table 3 order).
std::vector<Workload> paper_suite();

/// Everything the toolchain ships: the paper suite, the H.264 kernels and
/// the 4×4 matmul demo — the catalogue rsp_cli and the batch API serve.
std::vector<Workload> full_catalogue();

/// Lookup by canonical name ("Hydro", "2D-FDCT", ...). Throws NotFoundError
/// listing the paper-suite names.
Workload find_workload(const std::string& name);

/// Lookup across `full_catalogue()` plus the generated family: any
/// `gen:<seed>` name materialises src/gen's seeded random kernel on demand
/// (always with the default GeneratorConfig, so a name pins one workload).
/// Throws NotFoundError listing the available names.
Workload find_in_catalogue(const std::string& name);

/// Lookup in an already-built catalogue — callers resolving many names
/// build `full_catalogue()` once instead of per lookup. `gen:<seed>` names
/// resolve through a process-wide cache of materialised workloads (stable
/// references, thread-safe). Throws NotFoundError listing the available
/// names.
const Workload& find_in_catalogue(const std::vector<Workload>& catalogue,
                                  const std::string& name);

}  // namespace rsp::kernels
