// The paper's kernel suite in table order, plus name lookup.
#pragma once

#include <vector>

#include "kernels/workload.hpp"

namespace rsp::kernels {

/// Table 4 kernels: Hydro, ICCG, Tri-diagonal, Inner product, State.
std::vector<Workload> livermore_suite();

/// Table 5 kernels: 2D-FDCT, SAD, MVM, FFT.
std::vector<Workload> dsp_suite();

/// All nine kernels in paper order (Table 3 order).
std::vector<Workload> paper_suite();

/// Lookup by canonical name ("Hydro", "2D-FDCT", ...). Throws NotFoundError.
Workload find_workload(const std::string& name);

}  // namespace rsp::kernels
