// A workload = kernel + mapping directives + data environment + golden model.
//
// Each of the paper's Table 3 kernels is packaged as a Workload:
//   * `kernel`    — the loop-body dataflow graph and trip count;
//   * `array`     — the array geometry it targets (8×8 for the paper suite);
//   * `hints`     — how iterations are laid out (lanes/columns/stagger);
//   * `reduction` — optional cross-PE reduction epilogue;
//   * `setup`     — allocates and deterministically initialises memory;
//   * `golden`    — an independent C++ reference computing the expected
//                   final memory (NOT via the IR interpreter, so kernel
//                   construction bugs cannot cancel out). The one exception
//                   is the generated `gen:<seed>` family (src/gen), whose
//                   golden is interpreter-derived by design — the generator
//                   emits arbitrary graphs no hand-written model could
//                   anticipate, and the interpreter is the semantic
//                   authority the simulators are differentially fuzzed
//                   against (docs/GENERATOR.md).
#pragma once

#include <functional>
#include <string>

#include "arch/array.hpp"
#include "ir/interp.hpp"
#include "ir/kernel.hpp"
#include "sched/mapping.hpp"

namespace rsp::kernels {

struct Workload {
  std::string name;           ///< canonical name matching the paper tables
  ir::LoopKernel kernel;
  arch::ArraySpec array;
  sched::MappingHints hints;
  sched::ReductionSpec reduction;
  std::function<void(ir::Memory&)> setup;
  std::function<void(ir::Memory&)> golden;
};

/// Deterministic input vector in [lo, hi], seeded by (tag, length).
/// Throws InvalidArgumentError when lo > hi.
std::vector<std::int64_t> deterministic_data(const std::string& tag,
                                             std::size_t length,
                                             std::int64_t lo, std::int64_t hi);

}  // namespace rsp::kernels
