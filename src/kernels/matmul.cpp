#include "kernels/matmul.hpp"

#include "ir/builder.hpp"
#include "util/error.hpp"

namespace rsp::kernels {

Workload make_matmul(int n, std::int64_t scale) {
  if (n < 2 || n > 16)
    throw InvalidArgumentError("matmul order must be in [2, 16]");
  const std::int64_t nn = n;

  ir::GraphBuilder b;
  // iteration it = j·n + i  →  lane i (array row), wave j (array column).
  auto xi = [nn](std::int64_t k) {
    return [nn, k](std::int64_t it) { return (it % nn) * nn + k; };
  };
  auto yi = [nn](std::int64_t k) {
    return [nn, k](std::int64_t it) { return k * nn + it / nn; };
  };

  ir::NodeId acc = ir::kInvalidNode;
  for (std::int64_t k = 0; k < nn; ++k) {
    auto x = b.load("X", xi(k), "X[i][" + std::to_string(k) + "]");
    auto y = b.load("Y", yi(k), "Y[" + std::to_string(k) + "][j]");
    auto p = b.mult(x, y);
    acc = (k == 0) ? p : b.add(acc, p);
  }
  auto c = b.constant(scale, "C");
  auto z = b.mult(c, acc, "C*sum");
  b.store("Z", [nn](std::int64_t it) { return (it % nn) * nn + it / nn; }, z,
          "Z[i][j]");

  arch::ArraySpec array;
  array.rows = n;
  array.cols = n;

  Workload w{"MatMul" + std::to_string(n),
             ir::LoopKernel("MatMul" + std::to_string(n), b.take(), nn * nn),
             array,
             {},
             {},
             {},
             {}};
  w.hints.lanes = n;
  w.hints.stagger = 1;
  w.hints.columns = n;
  const std::size_t elems = static_cast<std::size_t>(n) * n;
  w.setup = [elems](ir::Memory& m) {
    m.set("X", deterministic_data("matmul.X", elems, -9, 9));
    m.set("Y", deterministic_data("matmul.Y", elems, -9, 9));
    m.allocate("Z", elems);
  };
  w.golden = [nn, scale](ir::Memory& m) {
    for (std::int64_t i = 0; i < nn; ++i)
      for (std::int64_t j = 0; j < nn; ++j) {
        std::int64_t sum = 0;
        for (std::int64_t k = 0; k < nn; ++k)
          sum += m.read("X", i * nn + k) * m.read("Y", k * nn + j);
        m.write("Z", i * nn + j, scale * sum);
      }
  };
  return w;
}

}  // namespace rsp::kernels
