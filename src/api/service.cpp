#include "api/service.hpp"

#include <unistd.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "analysis/verifier.hpp"
#include "api/protocol.hpp"
#include "arch/bitstream.hpp"
#include "arch/presets.hpp"
#include "ir/dot.hpp"
#include "kernels/registry.hpp"
#include "rtl/generate.hpp"
#include "runtime/dist_shard.hpp"
#include "runtime/sim_batch.hpp"
#include "sched/legality.hpp"
#include "sched/mapper.hpp"
#include "sched/pretty.hpp"
#include "sched/scheduler.hpp"
#include "sim/machine.hpp"
#include "sim/vcd.hpp"
#include "util/error.hpp"

namespace rsp::api {

Service::Service(ServiceOptions options)
    : cache_(options.cache ? std::move(options.cache)
                           : std::make_shared<runtime::EvalCache>(
                                 16, options.cache_max_entries)),
      mapping_cache_(options.mapping_cache
                         ? std::move(options.mapping_cache)
                         : std::make_shared<runtime::MappingCache>(
                               16, options.cache_max_entries)),
      sim_runs_(16, options.cache_max_entries),
      catalogue_(kernels::full_catalogue()),
      workers_(options.threads),
      dispatch_(options.max_inflight) {}

runtime::RuntimeOptions Service::runtime_options() const {
  runtime::RuntimeOptions runtime;
  runtime.pool = &workers_;
  runtime.cache = cache_;
  runtime.mapping_cache = mapping_cache_;
  return runtime;
}

sched::ConfigurationContext Service::schedule_for(
    const kernels::Workload& w, const arch::Architecture& a) const {
  // The mapping memo-cache makes repeated map/simulate/vcd/bitstream
  // requests skip remapping; only the target-architecture schedule runs.
  const std::shared_ptr<const dse::KernelPrep> prep =
      mapping_cache_->get_or_map(w);
  const sched::ContextScheduler scheduler;
  sched::ConfigurationContext ctx = scheduler.schedule(prep->program, a);
  sched::require_legal(ctx);
  return ctx;
}

const kernels::Workload& Service::workload(const std::string& name) const {
  return kernels::find_in_catalogue(catalogue_, name);
}

arch::Architecture Service::architecture(const std::string& name, int rows,
                                         int cols) const {
  for (const arch::Architecture& a : arch::standard_suite(rows, cols))
    if (a.name == name) return a;
  throw NotFoundError("unknown architecture '" + name +
                      "' (Base, RS#1..RS#4, RSP#1..RSP#4)");
}

ListResponse Service::list(const ListRequest&) const {
  ListResponse resp;
  for (const kernels::Workload& w : catalogue_) {
    KernelInfo info;
    info.name = w.name;
    info.iterations = w.kernel.trip_count();
    info.op_set = w.kernel.op_set_string();
    info.array =
        std::to_string(w.array.rows) + "x" + std::to_string(w.array.cols);
    resp.kernels.push_back(std::move(info));
  }
  for (const arch::Architecture& a : arch::standard_suite())
    resp.architectures.push_back(a.name);
  return resp;
}

EvalResponse Service::eval(const EvalRequest& request) const {
  const kernels::Workload& w = workload(request.kernel);
  const runtime::ParallelExplorer evaluator(
      w.array, {}, synth::SynthesisModel(), runtime_options());
  EvalResponse resp;
  resp.kernel = w.name;
  resp.rows = evaluator.evaluate_suite(
      w.name, mapping_cache_->get_or_map(w)->program,
      arch::standard_suite(w.array.rows, w.array.cols));
  return resp;
}

std::vector<kernels::Workload> Service::dse_domain(
    const std::vector<std::string>& names) const {
  std::vector<kernels::Workload> domain;
  if (names.empty()) {
    domain = kernels::paper_suite();
  } else {
    for (const std::string& name : names) domain.push_back(workload(name));
  }
  return domain;
}

DseResponse Service::dse(const DseRequest& request) const {
  if (dse_delegate_) return dse_delegate_(request);
  const std::vector<kernels::Workload> domain = dse_domain(request.kernels);
  DseResponse resp;
  for (const kernels::Workload& w : domain) resp.kernels.push_back(w.name);
  const runtime::ParallelExplorer explorer(domain.front().array,
                                           request.config,
                                           synth::SynthesisModel(),
                                           runtime_options());
  resp.result = explorer.explore(domain);
  return resp;
}

DseShardResponse Service::dse_shard(const DseShardRequest& request) const {
  if (request.begin < 0 || request.end < 0)
    throw InvalidArgumentError("shard bounds must be non-negative");
  const std::vector<kernels::Workload> domain = dse_domain(request.kernels);
  const dse::Explorer explorer(domain.front().array, request.config);
  const auto begin = static_cast<std::size_t>(request.begin);
  const auto end = static_cast<std::size_t>(request.end);

  DseShardResponse resp;
  resp.exact = request.exact;
  resp.begin = request.begin;
  resp.end = request.end;
  if (request.exact) {
    runtime::ExactShard shard =
        runtime::exact_shard(explorer, domain, begin, end, workers_,
                             mapping_cache_.get(), cache_.get());
    resp.cycles = std::move(shard.cycles);
    resp.stalls = std::move(shard.stalls);
  } else {
    runtime::EstimateShard shard = runtime::estimate_shard(
        explorer, domain, begin, end, workers_, mapping_cache_.get());
    resp.base_cycles = shard.base_cycles;
    resp.estimated_cycles = std::move(shard.estimated_cycles);
  }
  return resp;
}

WorkerInfoResponse Service::worker_info(const WorkerInfoRequest&) const {
  WorkerInfoResponse resp;
  resp.threads = workers_.thread_count();
  resp.max_inflight = dispatch_.thread_count();
  resp.kernels = catalogue_.size();
  resp.architectures = arch::standard_suite().size();
  resp.pid = static_cast<long>(::getpid());
  resp.uptime_ms = static_cast<long>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  return resp;
}

int LintResponse::error_count() const {
  int n = 0;
  for (const Row& row : rows) n += row.report.error_count();
  return n;
}

int LintResponse::warning_count() const {
  int n = 0;
  for (const Row& row : rows) n += row.report.warning_count();
  return n;
}

LintResponse Service::lint(const LintRequest& request) const {
  std::vector<kernels::Workload> domain;
  if (request.kernel.empty()) {
    domain = catalogue_;
  } else {
    domain.push_back(workload(request.kernel));
  }
  LintResponse resp;
  for (const kernels::Workload& w : domain) {
    std::vector<arch::Architecture> archs;
    if (request.arch.empty()) {
      archs = arch::standard_suite(w.array.rows, w.array.cols);
    } else {
      archs.push_back(architecture(request.arch, w.array.rows, w.array.cols));
    }
    for (const arch::Architecture& a : archs) {
      LintResponse::Row row;
      row.kernel = w.name;
      row.arch = a.name;
      try {
        row.report =
            analysis::lint_context(schedule_for(w, a));
      } catch (const std::exception& e) {
        // Mapping/scheduling died before a context existed (e.g. the
        // scheduler cannot place the kernel on this architecture) — a
        // toolchain finding, reported in-band like every other rule.
        row.report.diagnostics.push_back(analysis::Diagnostic{
            "RSP-T001", analysis::Severity::kError, analysis::Locus{},
            e.what(),
            "the toolchain rejected this (kernel, architecture) pair before "
            "a schedule existed"});
      }
      resp.rows.push_back(std::move(row));
    }
  }
  return resp;
}

MapResponse Service::map(const MapRequest& request) const {
  const kernels::Workload& w = workload(request.kernel);
  const arch::Architecture a =
      architecture(request.arch, w.array.rows, w.array.cols);
  const sched::ConfigurationContext ctx = schedule_for(w, a);
  MapResponse resp;
  resp.kernel = w.name;
  resp.arch = a.name;
  resp.schedule = sched::render_schedule(ctx);
  resp.cycles = ctx.length();
  resp.peak_critical_issues = ctx.max_critical_issues_per_cycle();
  return resp;
}

std::shared_ptr<const Service::SimRun> Service::sim_run(
    const kernels::Workload& w, const arch::Architecture& a,
    sim::SimEngine engine) const {
  const std::string key =
      w.name + '\n' + a.name + '\n' + sim::engine_name(engine);
  return sim_runs_.get_or_compute(key, [&]() {
    sched::ConfigurationContext ctx = schedule_for(w, a);
    ir::Memory mem, golden;
    w.setup(mem);
    w.setup(golden);
    const sim::SimResult result =
        sim::Machine(ir::DatapathMode::kExact, engine).run(ctx, mem);
    w.golden(golden);
    return std::make_shared<const SimRun>(
        SimRun{std::move(ctx), result, mem == golden});
  });
}

SimulateResponse Service::simulate(const SimulateRequest& request) const {
  const kernels::Workload& w = workload(request.kernel);
  const arch::Architecture a =
      architecture(request.arch, w.array.rows, w.array.cols);
  const std::shared_ptr<const SimRun> run = sim_run(w, a, request.engine);
  SimulateResponse resp;
  resp.kernel = w.name;
  resp.arch = a.name;
  resp.engine = sim::engine_name(request.engine);
  resp.cycles = run->result.stats.cycles;
  resp.pe_utilization = run->result.stats.pe_utilization();
  resp.matches_golden = run->matches_golden;
  return resp;
}

SimulateBatchResponse Service::simulate_batch(
    const SimulateBatchRequest& request) const {
  const kernels::Workload& w = workload(request.kernel);
  std::vector<arch::Architecture> archs;
  if (request.archs.empty()) {
    archs = arch::standard_suite(w.array.rows, w.array.cols);
  } else {
    for (const std::string& name : request.archs)
      archs.push_back(architecture(name, w.array.rows, w.array.cols));
  }

  std::vector<sched::ConfigurationContext> contexts;
  std::vector<ir::Memory> memories;
  contexts.reserve(archs.size());
  memories.reserve(archs.size());
  for (const arch::Architecture& a : archs) {
    contexts.push_back(schedule_for(w, a));
    memories.emplace_back();
    w.setup(memories.back());
  }
  std::vector<const sched::ConfigurationContext*> pointers;
  pointers.reserve(contexts.size());
  for (const sched::ConfigurationContext& ctx : contexts)
    pointers.push_back(&ctx);

  // Fan out on the evaluation pool: a dispatch task may block on workers_
  // futures, never the reverse (see the class comment).
  runtime::SimBatchOptions options;
  options.pool = &workers_;
  options.engine = request.engine;
  const std::vector<runtime::SimBatchResult> outcomes =
      runtime::simulate_many(pointers, std::move(memories), options);

  ir::Memory golden;
  w.setup(golden);
  w.golden(golden);

  SimulateBatchResponse resp;
  resp.kernel = w.name;
  resp.engine = sim::engine_name(request.engine);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    SimulateResponse row;
    row.kernel = w.name;
    row.arch = archs[i].name;
    row.engine = resp.engine;
    row.cycles = outcomes[i].result.stats.cycles;
    row.pe_utilization = outcomes[i].result.stats.pe_utilization();
    row.matches_golden = outcomes[i].memory == golden;
    resp.rows.push_back(std::move(row));
  }
  return resp;
}

RtlResponse Service::rtl(const RtlRequest& request) const {
  RtlResponse resp;
  resp.arch = request.arch;
  resp.verilog = rtl::generate_verilog(architecture(request.arch, 8, 8));
  return resp;
}

DotResponse Service::dot(const DotRequest& request) const {
  const kernels::Workload& w = workload(request.kernel);
  DotResponse resp;
  resp.kernel = w.name;
  resp.dot = ir::to_dot(w.kernel);
  return resp;
}

VcdResponse Service::vcd(const VcdRequest& request) const {
  const kernels::Workload& w = workload(request.kernel);
  const arch::Architecture a =
      architecture(request.arch, w.array.rows, w.array.cols);
  // Shares the memoized run with `simulate`: the simulate+vcd pair on the
  // same (kernel, arch, engine) costs one simulation.
  const std::shared_ptr<const SimRun> run = sim_run(w, a, request.engine);
  VcdResponse resp;
  resp.kernel = w.name;
  resp.arch = a.name;
  resp.vcd = sim::to_vcd(run->context, run->result);
  return resp;
}

BitstreamResponse Service::bitstream(const BitstreamRequest& request) const {
  const kernels::Workload& w = workload(request.kernel);
  const arch::Architecture a =
      architecture(request.arch, w.array.rows, w.array.cols);
  const sched::ConfigurationContext ctx = schedule_for(w, a);
  const arch::ConfigCache config = ctx.encode();
  BitstreamResponse resp;
  resp.kernel = w.name;
  resp.arch = a.name;
  resp.summary = config.summary();
  resp.bytes = arch::encode_bitstream(config, a.sharing).size();
  return resp;
}

CacheStatsResponse Service::cache_stats(const CacheStatsRequest&) const {
  CacheStatsResponse resp;
  resp.stats = cache_->stats();
  resp.mapping_stats = mapping_cache_->stats();
  resp.estimate_stats = mapping_cache_->estimate_stats();
  resp.sim_stats = sim_runs_.stats();
  resp.threads = workers_.thread_count();
  return resp;
}

CacheSaveResponse Service::cache_save(const CacheSaveRequest& request) const {
  const util::Json doc = cache_->serialize();
  std::ofstream file(request.path);
  if (!file)
    throw Error("cannot write cache file '" + request.path + "'");
  file << doc.dump() << "\n";
  file.flush();
  if (!file)
    throw Error("error while writing cache file '" + request.path + "'");
  CacheSaveResponse resp;
  resp.path = request.path;
  resp.entries = doc.at("entries").size();
  return resp;
}

CacheLoadResponse Service::cache_load(const CacheLoadRequest& request) const {
  std::ifstream file(request.path);
  if (!file)
    throw NotFoundError("cannot open cache file '" + request.path + "'");
  std::ostringstream text;
  text << file.rdbuf();
  CacheLoadResponse resp;
  resp.path = request.path;
  resp.entries_loaded = cache_->deserialize(util::Json::parse(text.str()));
  resp.entries_total = cache_->stats().entries;
  return resp;
}

PingResponse Service::ping(const PingRequest& request) const {
  if (request.delay_ms < 0 || request.delay_ms > kMaxPingDelayMs)
    throw InvalidArgumentError("'delay_ms' must be in [0, " +
                               std::to_string(kMaxPingDelayMs) + "]");
  if (request.delay_ms > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(request.delay_ms));
  PingResponse resp;
  resp.delay_ms = request.delay_ms;
  return resp;
}

namespace {

// One overload per operation, so the variant visitor in handle() routes by
// plain overload resolution instead of a hand-written type switch.
ListResponse dispatch_typed(const Service& s, const ListRequest& r) {
  return s.list(r);
}
EvalResponse dispatch_typed(const Service& s, const EvalRequest& r) {
  return s.eval(r);
}
DseResponse dispatch_typed(const Service& s, const DseRequest& r) {
  return s.dse(r);
}
MapResponse dispatch_typed(const Service& s, const MapRequest& r) {
  return s.map(r);
}
SimulateResponse dispatch_typed(const Service& s, const SimulateRequest& r) {
  return s.simulate(r);
}
SimulateBatchResponse dispatch_typed(const Service& s,
                                     const SimulateBatchRequest& r) {
  return s.simulate_batch(r);
}
LintResponse dispatch_typed(const Service& s, const LintRequest& r) {
  return s.lint(r);
}
RtlResponse dispatch_typed(const Service& s, const RtlRequest& r) {
  return s.rtl(r);
}
DotResponse dispatch_typed(const Service& s, const DotRequest& r) {
  return s.dot(r);
}
VcdResponse dispatch_typed(const Service& s, const VcdRequest& r) {
  return s.vcd(r);
}
BitstreamResponse dispatch_typed(const Service& s, const BitstreamRequest& r) {
  return s.bitstream(r);
}
CacheStatsResponse dispatch_typed(const Service& s,
                                  const CacheStatsRequest& r) {
  return s.cache_stats(r);
}
CacheSaveResponse dispatch_typed(const Service& s, const CacheSaveRequest& r) {
  return s.cache_save(r);
}
CacheLoadResponse dispatch_typed(const Service& s, const CacheLoadRequest& r) {
  return s.cache_load(r);
}
PingResponse dispatch_typed(const Service& s, const PingRequest& r) {
  return s.ping(r);
}
DseShardResponse dispatch_typed(const Service& s, const DseShardRequest& r) {
  return s.dse_shard(r);
}
WorkerInfoResponse dispatch_typed(const Service& s,
                                  const WorkerInfoRequest& r) {
  return s.worker_info(r);
}

}  // namespace

util::Json Service::handle(const Request& request) const {
  try {
    util::Json body = std::visit(
        [this](const auto& typed) {
          return to_body(dispatch_typed(*this, typed));
        },
        request);
    // The transport's contribution to cache_stats (see
    // set_stats_extension): merged here so every path — typed, serve,
    // batch — reports the same document.
    if (stats_extension_ && std::holds_alternative<CacheStatsRequest>(request))
      body.set("server", stats_extension_());
    if (dist_extension_ && std::holds_alternative<CacheStatsRequest>(request))
      body.set("dist", dist_extension_());
    return body;
  } catch (const std::exception& e) {
    // rsp::Error and anything else (bad_alloc on an oversized DSE space,
    // ...): failures travel in-band, never out of the dispatcher.
    util::Json body = util::Json::object();
    body.set("ok", false).set("error", std::string(e.what()));
    return body;
  }
}

std::future<util::Json> Service::submit(Request request) const {
  return dispatch_.submit(
      [this, request = std::move(request)] { return handle(request); });
}

std::future<void> Service::submit(
    Request request, std::function<void(util::Json body)> done) const {
  return dispatch_.submit(
      [this, request = std::move(request), done = std::move(done)] {
        done(handle(request));
      });
}

}  // namespace rsp::api
