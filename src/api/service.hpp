// rsp::api::Service — the single façade over the toolchain.
//
// Every entry point into the machinery (rsp_cli subcommands, the v1 batch
// document API, the NDJSON serving mode) dispatches through one stateful
// Service instance, so capabilities are wired once and every transport
// shares the same ThreadPool and EvalCache. Requests and responses are
// typed structs; the JSON wire format lives in api/protocol.hpp.
//
// Concurrency model: the Service owns two pools.
//   * `workers` — the evaluation pool. Heavy requests (eval, dse) fan
//     their per-(kernel, architecture) measurements out here through
//     runtime::ParallelExplorer, sharing the memo cache.
//   * `dispatch` — the request-level executor behind `submit()`.
//     Independent requests run concurrently here (the cross-request
//     fan-out); a dispatch task may block on `workers` futures but never
//     the other way around, so the two-pool split cannot deadlock —
//     request tasks submitted to a single shared pool could starve their
//     own inner evaluation tasks.
// Results are bit-identical to the serial paths regardless of either
// pool's size (see runtime::ParallelExplorer).
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "core/evaluator.hpp"
#include "dse/explorer.hpp"
#include "kernels/workload.hpp"
#include "runtime/eval_cache.hpp"
#include "runtime/mapping_cache.hpp"
#include "runtime/parallel_explorer.hpp"
#include "runtime/striped_cache.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/context.hpp"
#include "sim/machine.hpp"
#include "util/json.hpp"

namespace rsp::api {

// ------------------------------------------------------------ request types

struct ListRequest {};

struct EvalRequest {
  std::string kernel;
};

struct DseRequest {
  /// Domain kernel names; empty explores the full nine-kernel paper suite.
  std::vector<std::string> kernels;
  dse::ExplorerConfig config;
};

struct MapRequest {
  std::string kernel;
  std::string arch;
};

struct SimulateRequest {
  std::string kernel;
  std::string arch;
  /// Which simulator core runs the schedule. Both engines are bit-identical
  /// on legal contexts (docs/SIMULATOR.md); event is the production path.
  sim::SimEngine engine = sim::SimEngine::kEvent;
};

/// One kernel simulated across many architectures on the shared worker
/// pool (runtime::simulate_many). Empty `archs` runs the full standard
/// suite — the paper's nine designs.
struct SimulateBatchRequest {
  std::string kernel;
  std::vector<std::string> archs;
  sim::SimEngine engine = sim::SimEngine::kEvent;
};

struct RtlRequest {
  std::string arch;
};

struct DotRequest {
  std::string kernel;
};

struct VcdRequest {
  std::string kernel;
  std::string arch;
  /// The VCD bytes are engine-independent (bit-identity guarantee); the
  /// choice only selects which memoized simulation run is shared.
  sim::SimEngine engine = sim::SimEngine::kEvent;
};

struct BitstreamRequest {
  std::string kernel;
  std::string arch;
};

/// Static verification (analysis::lint_context) of the scheduled context a
/// kernel compiles to. Empty `kernel` lints the full catalogue; empty
/// `arch` lints across the full standard suite — `{}` is "lint
/// everything".
struct LintRequest {
  std::string kernel;
  std::string arch;
};

struct CacheStatsRequest {};

struct CacheSaveRequest {
  std::string path;
};

struct CacheLoadRequest {
  std::string path;
};

/// Liveness probe. `delay_ms` (bounded, see kMaxPingDelayMs) makes
/// completion order observable: a delayed ping submitted before an
/// immediate one completes after it, which the serve tests use to pin
/// down out-of-order streaming.
struct PingRequest {
  int delay_ms = 0;
};

inline constexpr int kMaxPingDelayMs = 10000;

/// An explicit sub-range [begin, end) of the DSE enumeration grid,
/// evaluated worker-side (runtime/dist_shard.hpp). `exact` selects step 5
/// (per-kernel exact cycles/stalls) over steps 2–3 (estimated-cycle sums).
/// Unlike DseRequest, the coordinator always sends the resolved kernel
/// names so every worker shards the identical run; an empty list still
/// falls back to the paper suite for hand-written requests.
struct DseShardRequest {
  std::vector<std::string> kernels;
  dse::ExplorerConfig config;
  long begin = 0;
  long end = 0;
  bool exact = false;
};

/// Integer-only shard products — no derived double crosses the wire; the
/// coordinator recomputes them all locally (runtime/dist_shard.hpp).
struct DseShardResponse {
  bool exact = false;
  long begin = 0;
  long end = 0;
  long base_cycles = 0;                   ///< estimate shards only
  std::vector<long> estimated_cycles;     ///< estimate shards, shard order
  std::vector<std::vector<long>> cycles;  ///< exact shards, [point][kernel]
  std::vector<std::vector<long>> stalls;  ///< exact shards, same shape
};

/// Identity/capacity handshake the coordinator opens every worker
/// connection with.
struct WorkerInfoRequest {};

struct WorkerInfoResponse {
  int threads = 0;
  int max_inflight = 0;
  std::size_t kernels = 0;        ///< catalogue size
  std::size_t architectures = 0;  ///< standard-suite size
  long pid = 0;
  /// Milliseconds since this Service was constructed. Together with `pid`
  /// the coordinator's health probes distinguish a restarted worker (new
  /// pid, small uptime) from one that merely dropped a connection.
  long uptime_ms = 0;
};

/// Every operation the Service dispatches; api/protocol.hpp decodes wire
/// requests into this variant.
using Request =
    std::variant<ListRequest, EvalRequest, DseRequest, MapRequest,
                 SimulateRequest, SimulateBatchRequest, LintRequest,
                 RtlRequest, DotRequest, VcdRequest, BitstreamRequest,
                 CacheStatsRequest, CacheSaveRequest, CacheLoadRequest,
                 PingRequest, DseShardRequest, WorkerInfoRequest>;

// ----------------------------------------------------------- response types

struct KernelInfo {
  std::string name;
  long iterations = 0;
  std::string op_set;
  std::string array;  ///< "RxC"
};

struct ListResponse {
  std::vector<KernelInfo> kernels;
  std::vector<std::string> architectures;
};

struct EvalResponse {
  std::string kernel;
  std::vector<core::EvalResult> rows;  ///< suite order (Base first)
};

struct DseResponse {
  std::vector<std::string> kernels;  ///< resolved domain, in order
  dse::ExplorationResult result;
};

struct MapResponse {
  std::string kernel;
  std::string arch;
  std::string schedule;  ///< rendered context grid
  int cycles = 0;
  int peak_critical_issues = 0;
};

struct SimulateResponse {
  std::string kernel;
  std::string arch;
  std::string engine;  ///< "dense" or "event"
  int cycles = 0;
  double pe_utilization = 0.0;
  bool matches_golden = false;
};

struct SimulateBatchResponse {
  std::string kernel;
  std::string engine;
  std::vector<SimulateResponse> rows;  ///< requested order
};

struct LintResponse {
  /// One linted (kernel, architecture) pair. `report` is empty except for
  /// its findings when the toolchain itself failed — then the failure is
  /// surfaced as a single RSP-T001 error diagnostic instead of a thrown
  /// exception, so one bad pair cannot hide the rest of a catalogue lint.
  struct Row {
    std::string kernel;
    std::string arch;
    analysis::LintReport report;
  };
  std::vector<Row> rows;  ///< kernel-major, suite order within a kernel

  int error_count() const;
  int warning_count() const;
  bool clean() const { return error_count() == 0; }
};

struct RtlResponse {
  std::string arch;
  std::string verilog;
};

struct DotResponse {
  std::string kernel;
  std::string dot;
};

struct VcdResponse {
  std::string kernel;
  std::string arch;
  std::string vcd;
};

struct BitstreamResponse {
  std::string kernel;
  std::string arch;
  std::string summary;
  std::size_t bytes = 0;
};

struct CacheStatsResponse {
  runtime::CacheStats stats;           ///< evaluation memo table
  runtime::CacheStats mapping_stats;   ///< step-1 mapping memo table
  runtime::CacheStats estimate_stats;  ///< step-2/3 estimate memo table
  runtime::CacheStats sim_stats;       ///< simulation-run memo table
  int threads = 0;                     ///< evaluation pool size
};

struct CacheSaveResponse {
  std::string path;
  std::size_t entries = 0;  ///< entries written
};

struct CacheLoadResponse {
  std::string path;
  std::size_t entries_loaded = 0;
  std::size_t entries_total = 0;  ///< table size after the merge
};

struct PingResponse {
  int delay_ms = 0;
};

// ----------------------------------------------------------------- service

struct ServiceOptions {
  /// Evaluation-pool workers; 0 = hardware count.
  int threads = 0;
  /// Request-level concurrency (dispatch-pool threads); 0 = hardware count.
  int max_inflight = 0;
  /// Shared memo table; created internally when null. Pass one in to keep
  /// cache state warm across Service instances in the same process.
  std::shared_ptr<runtime::EvalCache> cache;
  /// Step-1 mapping memo table; created internally when null (same warm-
  /// sharing contract as `cache`).
  std::shared_ptr<runtime::MappingCache> mapping_cache;
  /// Capacity bound applied to each memo table the Service creates
  /// internally (segmented-LRU eviction); 0 = unbounded. Tables passed in
  /// keep the bound they were constructed with.
  std::size_t cache_max_entries = 0;
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // Typed entry points. All are thread-safe; eval/dse fan their inner work
  // out across the shared evaluation pool and memo cache.
  ListResponse list(const ListRequest&) const;
  EvalResponse eval(const EvalRequest&) const;
  DseResponse dse(const DseRequest&) const;
  MapResponse map(const MapRequest&) const;
  SimulateResponse simulate(const SimulateRequest&) const;
  SimulateBatchResponse simulate_batch(const SimulateBatchRequest&) const;
  LintResponse lint(const LintRequest&) const;
  RtlResponse rtl(const RtlRequest&) const;
  DotResponse dot(const DotRequest&) const;
  VcdResponse vcd(const VcdRequest&) const;
  BitstreamResponse bitstream(const BitstreamRequest&) const;
  CacheStatsResponse cache_stats(const CacheStatsRequest&) const;
  CacheSaveResponse cache_save(const CacheSaveRequest&) const;
  CacheLoadResponse cache_load(const CacheLoadRequest&) const;
  PingResponse ping(const PingRequest&) const;
  DseShardResponse dse_shard(const DseShardRequest&) const;
  WorkerInfoResponse worker_info(const WorkerInfoRequest&) const;

  /// JSON-level dispatch: runs the request and renders the response *body*
  /// ({"op": ..., "ok": true, ...}). Failures are reported in-band as
  /// {"ok": false, "error": ...} — this never throws, so one bad request
  /// cannot take down a serve loop or batch.
  util::Json handle(const Request& request) const;

  /// Asynchronous `handle` on the dispatch pool: independent requests run
  /// concurrently while sharing the evaluation pool and cache.
  std::future<util::Json> submit(Request request) const;

  /// As above, but delivers the response body to `done` on the dispatch
  /// thread the moment the request completes — the serve loop streams
  /// out-of-order responses this way. The future signals that `done`
  /// returned.
  std::future<void> submit(Request request,
                           std::function<void(util::Json body)> done) const;

  /// Transport hook: when set, successful `cache_stats` bodies gain a
  /// "server" field holding `extension()`'s document — how the socket
  /// front-end folds its per-connection counters into the one stats op
  /// every client already speaks. Must be installed before requests are
  /// dispatched (the function is read concurrently, without locking, from
  /// dispatch threads); an extension that throws turns the response into
  /// the usual in-band error.
  void set_stats_extension(std::function<util::Json()> extension) {
    stats_extension_ = std::move(extension);
  }

  /// Coordinator hook: when set, `dse` requests are answered by
  /// `delegate(request)` instead of the local ParallelExplorer — how
  /// `serve --workers` turns a server into a distributed front-end while
  /// every other op (including dse_shard) stays local. Same installation
  /// contract as set_stats_extension: set before requests are dispatched;
  /// a delegate that throws becomes the usual in-band error.
  void set_dse_delegate(std::function<DseResponse(const DseRequest&)> delegate) {
    dse_delegate_ = std::move(delegate);
  }

  /// Coordinator hook: when set, successful `cache_stats` bodies gain a
  /// "dist" field holding `extension()`'s document (the per-worker
  /// shard/latency/retry counters of dist::DseCoordinator). Same
  /// installation contract as set_stats_extension.
  void set_dist_extension(std::function<util::Json()> extension) {
    dist_extension_ = std::move(extension);
  }

  int thread_count() const { return workers_.thread_count(); }
  int max_inflight() const { return dispatch_.thread_count(); }
  const std::shared_ptr<runtime::EvalCache>& cache() const { return cache_; }
  const std::shared_ptr<runtime::MappingCache>& mapping_cache() const {
    return mapping_cache_;
  }

 private:
  runtime::RuntimeOptions runtime_options() const;
  const kernels::Workload& workload(const std::string& name) const;
  /// Resolves DSE kernel names into workloads: empty = the paper suite.
  /// Shared by dse and dse_shard so both paths name the same domain.
  std::vector<kernels::Workload> dse_domain(
      const std::vector<std::string>& names) const;
  arch::Architecture architecture(const std::string& name, int rows,
                                  int cols) const;
  /// Maps `w` (through the mapping memo-cache) and schedules it on `a`.
  sched::ConfigurationContext schedule_for(const kernels::Workload& w,
                                           const arch::Architecture& a) const;

  /// One memoized simulation: everything both `simulate` and `vcd` need, so
  /// the pair costs a single run (the pre-PR-6 service re-simulated from
  /// scratch for the VCD dump).
  struct SimRun {
    sched::ConfigurationContext context;
    sim::SimResult result;
    bool matches_golden = false;
  };

  /// Runs (or recalls) the simulation of `w` on `a` under `engine`. Keys by
  /// kernel name × architecture name × engine — both names resolve through
  /// fixed tables (the catalogue and the standard suite), so a name pins
  /// the full configuration.
  std::shared_ptr<const SimRun> sim_run(const kernels::Workload& w,
                                        const arch::Architecture& a,
                                        sim::SimEngine engine) const;

  // Declaration order is destruction-order-critical: the pools must be
  // destroyed (draining their queued tasks) *before* the caches and
  // catalogue those tasks read, so they are declared after them — and
  // dispatch_ after workers_, since dispatch tasks block on worker
  // futures.
  std::shared_ptr<runtime::EvalCache> cache_;
  std::shared_ptr<runtime::MappingCache> mapping_cache_;
  /// Memoized simulation runs (simulate/vcd sharing); service-local.
  mutable runtime::StripedMemoCache<std::shared_ptr<const SimRun>> sim_runs_;
  /// Built once; read-only after construction (lookups are concurrent).
  std::vector<kernels::Workload> catalogue_;
  /// Construction instant — worker_info's uptime_ms baseline.
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  /// Set once before serving starts, read concurrently afterwards.
  std::function<util::Json()> stats_extension_;
  std::function<util::Json()> dist_extension_;
  std::function<DseResponse(const DseRequest&)> dse_delegate_;
  mutable runtime::ThreadPool workers_;
  mutable runtime::ThreadPool dispatch_;
};

}  // namespace rsp::api
