#include "api/socket_server.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <istream>
#include <ostream>
#include <thread>
#include <unordered_map>
#include <utility>

#include "api/protocol.hpp"
#include "util/error.hpp"
#include "util/mutex.hpp"

namespace rsp::api {

namespace {

int checked(int rc, const std::string& what) {
  if (rc < 0) throw Error(what + ": " + std::strerror(errno));
  return rc;
}

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

// Best-effort TCP_NODELAY: every response is one small send() (write_line
// flushes per line), and Nagle + the peer's delayed ACK would stall each
// by ~40ms. Harmlessly fails on unix sockets (EOPNOTSUPP).
void set_nodelay(int fd) {
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un sun{};
  sun.sun_family = AF_UNIX;
  // sun_path is a fixed ~108-byte array; a longer path cannot be bound.
  if (path.size() >= sizeof(sun.sun_path))
    throw InvalidArgumentError("unix socket path too long: '" + path + "'");
  std::memcpy(sun.sun_path, path.c_str(), path.size() + 1);
  return sun;
}

// EINTR-safe connect(). A signal during a blocking connect must not
// surface as a spurious transport failure: POSIX says the connection
// attempt *continues* asynchronously after EINTR, and re-issuing connect()
// would only yield EALREADY — so wait for writability and read the real
// outcome from SO_ERROR instead.
int connect_eintr(int fd, const sockaddr* addr, socklen_t len) {
  if (::connect(fd, addr, len) == 0) return 0;
  if (errno != EINTR) return -1;
  for (;;) {
    pollfd pfd{fd, POLLOUT, 0};
    const int rc = ::poll(&pfd, 1, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0)
      return -1;
    errno = err;
    return err == 0 ? 0 : -1;
  }
}

}  // namespace

// --------------------------------------------------------------- addresses

std::string ListenAddress::spec() const {
  if (kind == Kind::kUnix) return path;
  return host + ":" + std::to_string(port);
}

ListenAddress parse_listen_address(const std::string& spec) {
  if (spec.empty())
    throw InvalidArgumentError("listen address must not be empty");
  ListenAddress address;
  const std::size_t colon = spec.rfind(':');
  if (spec.find('/') != std::string::npos || colon == std::string::npos) {
    address.kind = ListenAddress::Kind::kUnix;
    address.path = spec;
    return address;
  }
  address.kind = ListenAddress::Kind::kTcp;
  address.host = spec.substr(0, colon);
  const std::string port_text = spec.substr(colon + 1);
  if (port_text.empty() || port_text.size() > 5 ||
      port_text.find_first_not_of("0123456789") != std::string::npos)
    throw InvalidArgumentError("'" + spec +
                               "': port must be a number in [0, 65535]");
  const int port = std::stoi(port_text);
  if (port > 65535)
    throw InvalidArgumentError("'" + spec +
                               "': port must be a number in [0, 65535]");
  address.port = port;
  return address;
}

namespace {

// One connection attempt. Returns the connected fd, or -1 with `reason`
// and `err` (the last connect/socket errno) filled in; non-retryable
// resolution failures throw directly.
int try_connect(const ListenAddress& address, std::string& reason,
                int& err) {
  if (address.kind == ListenAddress::Kind::kUnix) {
    const sockaddr_un sun = make_unix_addr(address.path);
    const int fd = checked(::socket(AF_UNIX, SOCK_STREAM, 0), "socket");
    set_cloexec(fd);
    if (connect_eintr(fd, reinterpret_cast<const sockaddr*>(&sun),
                      sizeof(sun)) != 0) {
      err = errno;
      reason = std::strerror(err);
      ::close(fd);
      return -1;
    }
    return fd;
  }
  // TCP: resolve (numeric or named host; empty host means loopback for the
  // client side) and try each returned endpoint in order.
  const std::string host = address.host.empty() ? "127.0.0.1" : address.host;
  const std::string port = std::to_string(address.port);
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &results);
  if (rc != 0)
    throw Error("cannot resolve '" + host + "': " + ::gai_strerror(rc));
  int fd = -1;
  reason = "no usable addresses";
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      err = errno;
      reason = std::strerror(err);
      continue;
    }
    set_cloexec(fd);
    if (connect_eintr(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      set_nodelay(fd);
      break;
    }
    err = errno;
    reason = std::strerror(err);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  return fd;
}

// Worth retrying: the server exists but is not accepting *yet* — refused
// (not bound / backlog reset), a unix socket file not created yet, or a
// race with a restarting listener.
bool transient_connect_error(int err) {
  return err == ECONNREFUSED || err == ENOENT || err == ECONNRESET;
}

}  // namespace

int connect_socket(const ListenAddress& address) {
  return connect_socket(address, ConnectOptions{});
}

int connect_socket(const ListenAddress& address,
                   const ConnectOptions& options) {
  options.validate("connect");
  for (int attempt = 1;; ++attempt) {
    std::string reason;
    int err = 0;
    const int fd = try_connect(address, reason, err);
    if (fd >= 0) return fd;
    if (!transient_connect_error(err) || options.attempts <= 1)
      throw Error("cannot connect to '" + address.spec() + "': " + reason);
    if (!options.should_retry(attempt))
      throw Error(options.give_up("cannot connect to '" + address.spec() +
                                  "'", reason));
    options.sleep_before_retry(attempt);
  }
}

// --------------------------------------------------------------- streambuf

SocketStreamBuf::SocketStreamBuf(int fd)
    : fd_(fd), in_buf_(1 << 16), out_buf_(1 << 16) {
  setg(in_buf_.data(), in_buf_.data(), in_buf_.data());
  setp(out_buf_.data(), out_buf_.data() + out_buf_.size());
}

SocketStreamBuf::int_type SocketStreamBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  ssize_t n;
  do {
    n = ::recv(fd_, in_buf_.data(), in_buf_.size(), 0);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) {
    if (n < 0) read_error_ = true;  // reset/error, not the peer's clean EOF
    return traits_type::eof();
  }
  setg(in_buf_.data(), in_buf_.data(), in_buf_.data() + n);
  return traits_type::to_int_type(*gptr());
}

bool SocketStreamBuf::flush_buffer() {
  const char* data = pbase();
  std::size_t left = static_cast<std::size_t>(pptr() - pbase());
  while (left > 0) {
    // MSG_NOSIGNAL: a vanished peer must surface as badbit on the stream
    // (the serve loop's output_failed path), not as SIGPIPE.
    const ssize_t n = ::send(fd_, data, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  setp(out_buf_.data(), out_buf_.data() + out_buf_.size());
  return true;
}

SocketStreamBuf::int_type SocketStreamBuf::overflow(int_type ch) {
  if (!flush_buffer()) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int SocketStreamBuf::sync() { return flush_buffer() ? 0 : -1; }

// ------------------------------------------------------------------ server

struct SocketServer::Impl {
  Service& service;
  const SocketServerOptions options;

  std::vector<int> listen_fds;
  std::vector<std::string> unlink_paths;  ///< unix socket files we own
  int wake_rd = -1;  ///< self-pipe: shutdown() pokes the poll loop
  int wake_wr = -1;
  std::atomic<bool> stopping{false};
  /// Second shutdown() (^C again): force-close stuck connections.
  std::atomic<bool> force_stop{false};

  struct Connection {
    int fd = -1;
    std::thread thread;
  };

  // Guards connections/finished/stats; cv signals connection exits so the
  // drain can wait for the map to empty without spinning.
  mutable util::Mutex mu;
  std::condition_variable_any cv;
  std::unordered_map<std::uint64_t, Connection> connections
      RSP_GUARDED_BY(mu);
  /// Exited threads awaiting join.
  std::vector<std::thread> finished RSP_GUARDED_BY(mu);
  std::uint64_t next_connection_id RSP_GUARDED_BY(mu) = 0;
  SocketServerStats stats RSP_GUARDED_BY(mu);

  Impl(Service& s, SocketServerOptions o)
      : service(s), options(std::move(o)) {}

  ListenAddress bind_listener(const ListenAddress& address) {
    ListenAddress bound = address;
    int fd = -1;
    if (address.kind == ListenAddress::Kind::kUnix) {
      const sockaddr_un sun = make_unix_addr(address.path);
      // A stale socket file from a crashed server must be cleared (it
      // would fail the bind with EADDRINUSE) — but ONLY debris: never a
      // non-socket file (a typo'd --listen must not delete data), and
      // never the socket of a live server (unlinking it would silently
      // strand that server with no error on either side). A probe connect
      // distinguishes live (accepted) from stale (refused).
      struct stat st {};
      if (::lstat(address.path.c_str(), &st) == 0) {
        if (!S_ISSOCK(st.st_mode))
          throw Error("refusing to replace non-socket file '" +
                      address.path + "'");
        const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
        bool live = false;
        if (probe >= 0) {
          live = ::connect(probe, reinterpret_cast<const sockaddr*>(&sun),
                           sizeof(sun)) == 0;
          ::close(probe);
        }
        if (live)
          throw Error("cannot bind '" + address.path +
                      "': a running server is listening there");
        ::unlink(address.path.c_str());
      }
      fd = checked(::socket(AF_UNIX, SOCK_STREAM, 0), "socket");
      set_cloexec(fd);
      if (::bind(fd, reinterpret_cast<const sockaddr*>(&sun), sizeof(sun)) !=
          0) {
        const std::string reason = std::strerror(errno);
        ::close(fd);
        throw Error("cannot bind '" + address.path + "': " + reason);
      }
      unlink_paths.push_back(address.path);
    } else {
      const std::string port = std::to_string(address.port);
      addrinfo hints{};
      hints.ai_family = AF_UNSPEC;
      hints.ai_socktype = SOCK_STREAM;
      hints.ai_flags = AI_PASSIVE;
      addrinfo* results = nullptr;
      const int rc = ::getaddrinfo(
          address.host.empty() ? nullptr : address.host.c_str(), port.c_str(),
          &hints, &results);
      if (rc != 0)
        throw Error("cannot resolve '" + address.spec() +
                    "': " + ::gai_strerror(rc));
      std::string reason = "no usable addresses";
      const auto try_bind = [&](addrinfo* ai) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
          reason = std::strerror(errno);
          return false;
        }
        set_cloexec(fd);
        const int enable = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
        if (ai->ai_family == AF_INET6) {
          // ":port" promises every interface: a dual-stack v6 socket
          // (V6ONLY off) serves v4 clients through v4-mapped addresses,
          // so one fd really is "all interfaces".
          const int v6only = 0;
          ::setsockopt(fd, IPPROTO_IPV6, IPV6_V6ONLY, &v6only,
                       sizeof(v6only));
        }
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0) return true;
        reason = std::strerror(errno);
        ::close(fd);
        fd = -1;
        return false;
      };
      // Two passes for the empty-host (all-interfaces) form: prefer the
      // dual-stack AF_INET6 endpoint, falling back to whatever binds
      // (v4-only hosts, containers without IPv6) — getaddrinfo's own
      // ordering is unspecified, and binding only its first result could
      // leave the other family unreachable.
      const bool prefer_dual_stack = address.host.empty();
      for (addrinfo* ai = results; ai != nullptr && fd < 0; ai = ai->ai_next)
        if (!prefer_dual_stack || ai->ai_family == AF_INET6) try_bind(ai);
      for (addrinfo* ai = results; ai != nullptr && fd < 0; ai = ai->ai_next)
        if (prefer_dual_stack && ai->ai_family != AF_INET6) try_bind(ai);
      ::freeaddrinfo(results);
      if (fd < 0)
        throw Error("cannot bind '" + address.spec() + "': " + reason);
      // Resolve the ephemeral port so addresses() is connectable.
      sockaddr_storage ss{};
      socklen_t len = sizeof(ss);
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&ss), &len) == 0) {
        if (ss.ss_family == AF_INET)
          bound.port =
              ntohs(reinterpret_cast<const sockaddr_in*>(&ss)->sin_port);
        else if (ss.ss_family == AF_INET6)
          bound.port =
              ntohs(reinterpret_cast<const sockaddr_in6*>(&ss)->sin6_port);
      }
    }
    if (::listen(fd, 128) != 0) {
      const std::string reason = std::strerror(errno);
      ::close(fd);
      throw Error("cannot listen on '" + address.spec() + "': " + reason);
    }
    // Non-blocking listener: a connection that is aborted between poll()
    // and accept() is removed from the queue, and a *blocking* accept
    // would then hang run() beyond the reach of shutdown()'s self-pipe.
    ::fcntl(fd, F_SETFL, O_NONBLOCK);
    listen_fds.push_back(fd);
    return bound;
  }

  // Answers a connection the server will not serve with one in-band error
  // line and closes it; the single best-effort send cannot block
  // meaningfully (a fresh socket's send buffer dwarfs one line). The
  // half-close plus bounded drain matters on TCP: close() with unread
  // request bytes queued sends RST, which can destroy the error line
  // still in flight — the client would see a bare reset instead of the
  // documented in-band rejection.
  void refuse(int fd, const std::string& message) {
    const std::string line =
        encode_v2_response(util::Json(), error_body(message)).dump() + "\n";
    ssize_t sent;
    do {  // EINTR must not eat the only error line the peer will ever see
      sent = ::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
    } while (sent < 0 && errno == EINTR);
    ::shutdown(fd, SHUT_WR);
    ::fcntl(fd, F_SETFL, O_NONBLOCK);
    char scratch[4096];
    for (int spins = 0; spins < 20; ++spins) {  // ≤ ~100ms, on accept thread
      pollfd pfd{fd, POLLIN, 0};
      if (::poll(&pfd, 1, 5) <= 0) continue;
      const ssize_t n = ::recv(fd, scratch, sizeof(scratch), 0);
      if (n == 0) break;                 // peer saw the FIN: line delivered
      if (n < 0 && errno != EINTR && errno != EAGAIN &&
          errno != EWOULDBLOCK)
        break;                           // peer reset anyway
    }
    ::close(fd);
  }

  void start_connection(int client_fd) {
    // Decide under the lock, refuse (send + ~100ms drain) outside it:
    // holding mu through refuse() would stall stats readers and every
    // connection trying to release its slot.
    std::string refusal;
    {
      const util::MutexLock lock(mu);
      if (stopping.load(std::memory_order_acquire)) {
        // Raced with shutdown: this connection would never be drained.
        ::close(client_fd);
        return;
      }
      if (static_cast<int>(connections.size()) >= options.max_connections) {
        ++stats.rejected;
        refusal = "server connection limit (" +
                  std::to_string(options.max_connections) + ") reached";
      } else {
        const std::uint64_t id = next_connection_id++;
        // Insert before the thread starts: its epilogue looks itself up.
        Connection& connection = connections[id];
        connection.fd = client_fd;
        try {
          connection.thread = std::thread(
              [this, id, client_fd] { serve_connection(id, client_fd); });
          ++stats.accepted;
        } catch (const std::exception& e) {
          // pthread resource exhaustion (EAGAIN): a threadless map entry
          // would hang the drain forever and the throw would unwind run()
          // past it — refuse the connection instead and keep serving.
          connections.erase(id);
          ++stats.rejected;
          refusal =
              std::string("server cannot serve this connection: ") + e.what();
        }
      }
    }
    if (!refusal.empty()) refuse(client_fd, refusal);
  }

  void serve_connection(std::uint64_t id, int fd) {
    ServeResult result;
    try {
      SocketStreamBuf buf(fd);
      // Distinct stream objects over one buf: the serve loop reads on this
      // thread while dispatch threads write completions, and the buf's get
      // and put areas are disjoint.
      std::istream in(&buf);
      std::ostream out(&buf);
      result = serve(service, in, out, options.serve);
      out.flush();
    } catch (...) {
      // A connection must never take the server down (serve() itself only
      // rethrows after draining); the client simply sees the close below.
    }
    {
      const util::MutexLock lock(mu);
      stats.requests += result.requests;
      stats.errors += result.errors;
      const auto it = connections.find(id);
      // Moving our own handle is fine — joining it is the reaper's job.
      finished.push_back(std::move(it->second.thread));
      connections.erase(it);
      cv.notify_all();
    }
    // Close strictly *after* the map entry is gone: drain() half-closes the
    // fds of entries still in the map (under the same mutex), so closing
    // first could hand it a recycled fd number owned by a newer connection
    // — and an erased-but-open fd also can't hold a connection slot a
    // reconnecting client already saw released.
    ::close(fd);
  }

  void reap_finished() {
    std::vector<std::thread> to_join;
    {
      const util::MutexLock lock(mu);
      to_join.swap(finished);
    }
    for (std::thread& t : to_join) t.join();
  }

  // The graceful half of shutdown(): half-close every active connection's
  // read side so its serve loop sees EOF, completes what is in flight and
  // answers it, then wait for every connection thread to finish. A peer
  // that stops *reading* can pin dispatch threads in send() forever, so a
  // graceful drain could hang — once force_stop is raised (the second
  // SIGINT/SIGTERM), remaining connections are fully closed, which fails
  // their stuck sends and lets the serve loops finish on the
  // output-failed path.
  void drain() {
    {
      const util::MutexLock lock(mu);
      for (auto& [id, connection] : connections)
        ::shutdown(connection.fd, SHUT_RD);
    }
    {
      util::MutexLock lock(mu);
      bool forced = false;
      while (!lock.wait_for(cv, std::chrono::milliseconds(200),
                            [this]() RSP_REQUIRES(mu) {
                              return connections.empty();
                            })) {
        if (forced || !force_stop.load(std::memory_order_acquire)) continue;
        forced = true;
        for (auto& [id, connection] : connections)
          ::shutdown(connection.fd, SHUT_RDWR);
      }
    }
    reap_finished();
  }

  void close_listeners() {
    for (const int fd : listen_fds) ::close(fd);
    listen_fds.clear();
    for (const std::string& path : unlink_paths) ::unlink(path.c_str());
    unlink_paths.clear();
  }
};

namespace {

// install_signal_handlers() target; handle_signal may only touch
// async-signal-safe state (SocketServer::shutdown is). g_handler_depth
// lets ~SocketServer wait out a handler that loaded the pointer just
// before the destructor cleared it — otherwise a signal racing the
// destructor could call shutdown() on a freed server.
std::atomic<SocketServer*> g_signal_server{nullptr};
std::atomic<int> g_handler_depth{0};

void handle_signal(int) {
  g_handler_depth.fetch_add(1, std::memory_order_acquire);
  if (SocketServer* server = g_signal_server.load(std::memory_order_acquire))
    server->shutdown();
  g_handler_depth.fetch_sub(1, std::memory_order_release);
}

}  // namespace

SocketServer::SocketServer(Service& service,
                           const std::vector<ListenAddress>& addresses,
                           SocketServerOptions options)
    : impl_(new Impl(service, std::move(options))) {
  try {
    if (addresses.empty())
      throw InvalidArgumentError("socket server needs at least one address");
    if (impl_->options.max_connections < 1)
      throw InvalidArgumentError("max_connections must be positive");
    int pipe_fds[2];
    checked(::pipe(pipe_fds), "pipe");
    impl_->wake_rd = pipe_fds[0];
    impl_->wake_wr = pipe_fds[1];
    set_cloexec(impl_->wake_rd);
    set_cloexec(impl_->wake_wr);
    ::fcntl(impl_->wake_wr, F_SETFL, O_NONBLOCK);  // signal-safe poke
    for (const ListenAddress& address : addresses)
      addresses_.push_back(impl_->bind_listener(address));
  } catch (...) {
    impl_->close_listeners();
    if (impl_->wake_rd >= 0) ::close(impl_->wake_rd);
    if (impl_->wake_wr >= 0) ::close(impl_->wake_wr);
    delete impl_;
    throw;
  }
}

SocketServer::~SocketServer() {
  SocketServer* expected = this;
  if (g_signal_server.compare_exchange_strong(expected, nullptr)) {
    ::signal(SIGINT, SIG_DFL);
    ::signal(SIGTERM, SIG_DFL);
    // A handler on another thread may have loaded `this` just before the
    // CAS; it finishes within nanoseconds (shutdown() is two atomic ops
    // and a pipe write), so spin it out before freeing what it touches.
    // A handler entered after the CAS reads null and is a no-op.
    while (g_handler_depth.load(std::memory_order_acquire) != 0)
      std::this_thread::yield();
  }
  impl_->close_listeners();
  ::close(impl_->wake_rd);
  ::close(impl_->wake_wr);
  delete impl_;
}

void SocketServer::install_signal_handlers() {
  g_signal_server.store(this, std::memory_order_release);
  struct sigaction action {};
  action.sa_handler = handle_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // interrupt poll() rather than restarting it
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

void SocketServer::shutdown() {
  // First call: graceful drain. A repeat (the operator's second ^C, or a
  // supervisor re-sending SIGTERM) escalates to force-closing connections
  // whose peers never read their responses. Both paths are
  // async-signal-safe: lock-free atomics plus a non-blocking pipe write
  // (a full pipe is fine — the poke is already pending).
  if (impl_->stopping.exchange(true, std::memory_order_acq_rel))
    impl_->force_stop.store(true, std::memory_order_release);
  const char byte = 1;
  (void)!::write(impl_->wake_wr, &byte, 1);
}

void SocketServer::run() {
  Impl& impl = *impl_;
  std::vector<pollfd> fds;
  fds.reserve(impl.listen_fds.size() + 1);
  for (const int fd : impl.listen_fds) fds.push_back({fd, POLLIN, 0});
  fds.push_back({impl.wake_rd, POLLIN, 0});

  while (!impl.stopping.load(std::memory_order_acquire)) {
    const int rc = ::poll(fds.data(), fds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks stopping
      break;                         // poll failure: treat as shutdown
    }
    impl.reap_finished();
    if (fds.back().revents != 0) break;  // shutdown() poked the pipe
    for (std::size_t i = 0; i + 1 < fds.size(); ++i) {
      if ((fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
        // A broken listener would keep poll() returning instantly; stop
        // polling it (poll ignores negative fds) but keep serving the
        // other listeners and the live connections.
        fds[i].fd = -1;
        continue;
      }
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int client = ::accept(fds[i].fd, nullptr, nullptr);
      if (client < 0) {
        // Out of fds, the pending connection stays in the backlog keeping
        // the listener readable — back off instead of hot-spinning until
        // a connection slot (and its fd) frees up.
        if (errno == EMFILE || errno == ENFILE || errno == ENOMEM)
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;  // otherwise: EAGAIN (aborted connection) etc., move on
      }
      set_cloexec(client);
      set_nodelay(client);
      impl.start_connection(client);
    }
  }

  impl.drain();
  impl.close_listeners();
}

SocketServerStats SocketServer::stats() const {
  const util::MutexLock lock(impl_->mu);
  SocketServerStats stats = impl_->stats;
  stats.active = impl_->connections.size();
  return stats;
}

util::Json SocketServer::stats_json() const {
  const SocketServerStats s = stats();
  util::Json connections = util::Json::object();
  connections.set("accepted", static_cast<std::int64_t>(s.accepted))
      .set("active", static_cast<std::int64_t>(s.active))
      .set("rejected", static_cast<std::int64_t>(s.rejected))
      .set("max", impl_->options.max_connections);
  util::Json doc = util::Json::object();
  doc.set("connections", std::move(connections));
  doc.set("requests", static_cast<std::int64_t>(s.requests));
  doc.set("errors", static_cast<std::int64_t>(s.errors));
  return doc;
}

int run_socket_client(const ListenAddress& address, std::istream& in,
                      std::ostream& out, const ConnectOptions& connect) {
  const int fd = connect_socket(address, connect);
  SocketStreamBuf buf(fd);
  std::istream sock_in(&buf);
  std::ostream sock_out(&buf);
  // Responses stream back on their own thread while requests go out, so a
  // server answering out of order (or faster than we send) never deadlocks
  // the pumps; get/put areas of the shared buf are disjoint.
  std::thread reader([&sock_in, &out] {
    std::string line;
    while (std::getline(sock_in, line)) out << line << "\n" << std::flush;
  });
  std::string line;
  bool sent_everything = true;
  while (std::getline(in, line)) {
    sock_out << line << "\n" << std::flush;
    if (!sock_out) {
      // The server vanished mid-stream: remaining input lines were never
      // sent — scripts must see that in the exit code, not a silent
      // truncation of the conversation.
      sent_everything = false;
      break;
    }
  }
  ::shutdown(fd, SHUT_WR);  // input done: the server drains, answers, closes
  reader.join();
  ::close(fd);
  // read_failed(): the connection was reset with responses undelivered —
  // as much a truncated conversation as an unsent request.
  return (sent_everything && !buf.read_failed() && out) ? 0 : 1;
}

}  // namespace rsp::api
