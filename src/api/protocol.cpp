#include "api/protocol.hpp"

#include <algorithm>
#include <initializer_list>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/report_json.hpp"
#include "sim/machine.hpp"
#include "util/error.hpp"

namespace rsp::api {

namespace {

// ----------------------------------------------------------- field helpers

// Shared by v1 and v2 "dse" payloads; the messages are part of the v1
// byte-compatibility contract, so they must not drift.
dse::ExplorerConfig parse_dse_config(const util::Json& request) {
  dse::ExplorerConfig config;
  if (!request.contains("config")) return config;
  const util::Json& c = request.at("config");
  if (!c.is_object())
    throw InvalidArgumentError("'config' must be an object");
  // Reject misspelled keys — a typo'd "objetive" silently running the
  // default objective would look like a successful exploration.
  static const std::vector<std::string> known = {
      "max_units_per_row", "max_units_per_col", "max_stages",
      "max_area_ratio",    "max_time_ratio",    "pareto_epsilon",
      "objective"};
  for (const std::string& key : c.keys())
    if (std::find(known.begin(), known.end(), key) == known.end())
      throw InvalidArgumentError("unknown config key '" + key + "'");
  const auto int_field = [&](const char* key, int fallback) {
    if (!c.contains(key)) return fallback;
    return c.at(key).as_int("config key '" + std::string(key) + "'");
  };
  const auto num_field = [&](const char* key, double fallback) {
    return c.contains(key) ? c.at(key).as_number() : fallback;
  };
  config.max_units_per_row =
      int_field("max_units_per_row", config.max_units_per_row);
  config.max_units_per_col =
      int_field("max_units_per_col", config.max_units_per_col);
  config.max_stages = int_field("max_stages", config.max_stages);
  config.max_area_ratio = num_field("max_area_ratio", config.max_area_ratio);
  config.max_time_ratio = num_field("max_time_ratio", config.max_time_ratio);
  config.pareto_epsilon = num_field("pareto_epsilon", config.pareto_epsilon);
  // Wire-level configs are validated strictly at decode time so the error
  // arrives in-band instead of as a silently empty or nonsensical grid.
  // Every default is positive, so a non-positive value can only come from
  // an explicit field — rejected on top of the structural checks
  // ExplorerConfig::validate() enforces for every construction (which
  // still permits zero unit bounds for programmatic use).
  const auto reject_bound = [](const char* key, const char* what) {
    throw InvalidArgumentError("config key '" + std::string(key) +
                               "' must be " + what);
  };
  if (config.max_units_per_row <= 0)
    reject_bound("max_units_per_row", "positive");
  if (config.max_units_per_col <= 0)
    reject_bound("max_units_per_col", "positive");
  if (config.max_stages <= 0) reject_bound("max_stages", "positive");
  if (!(config.max_area_ratio > 0.0))
    reject_bound("max_area_ratio", "positive");
  if (!(config.max_time_ratio > 0.0))
    reject_bound("max_time_ratio", "positive");
  if (!(config.pareto_epsilon >= 0.0))
    reject_bound("pareto_epsilon", "non-negative");
  if (c.contains("objective")) {
    const std::string& objective = c.at("objective").as_string();
    if (objective == "min_time")
      config.objective = dse::Objective::kMinTime;
    else if (objective == "min_area")
      config.objective = dse::Objective::kMinArea;
    else if (objective == "min_area_time")
      config.objective = dse::Objective::kMinAreaTimeProduct;
    else
      throw InvalidArgumentError("unknown objective '" + objective + "'");
  }
  return config;
}

// "kernels" extraction shared by v1 and v2 dse payloads (v1 message).
std::vector<std::string> parse_kernel_names(const util::Json& request) {
  std::vector<std::string> names;
  if (!request.contains("kernels")) return names;
  const util::Json& list = request.at("kernels");
  if (!list.is_array() || list.size() == 0)
    throw InvalidArgumentError("'kernels' must be a non-empty array");
  for (std::size_t i = 0; i < list.size(); ++i)
    names.push_back(list.at(i).as_string());
  return names;
}

DseRequest parse_dse_request(const util::Json& doc) {
  DseRequest request;
  request.kernels = parse_kernel_names(doc);
  request.config = parse_dse_config(doc);
  return request;
}

// Optional "engine" payload field shared by simulate / simulate_batch /
// vcd; absent selects the production event engine.
sim::SimEngine parse_engine_field(const util::Json& doc) {
  if (!doc.contains("engine")) return sim::SimEngine::kEvent;
  return sim::parse_sim_engine(doc.at("engine").as_string());
}

std::string require_string(const util::Json& doc, const char* field,
                           const std::string& op) {
  if (!doc.contains(field))
    throw InvalidArgumentError("op '" + op + "' requires a '" + field +
                               "' field");
  return doc.at(field).as_string();
}

// Strict v2 field checking: everything outside the envelope must belong to
// the op's payload.
void require_known_fields(const util::Json& doc, const std::string& op,
                          std::initializer_list<const char*> allowed) {
  for (const std::string& key : doc.keys()) {
    if (key == "protocol_version" || key == "id" || key == "op") continue;
    if (std::none_of(allowed.begin(), allowed.end(),
                     [&](const char* a) { return key == a; }))
      throw InvalidArgumentError("unknown field '" + key + "' for op '" + op +
                                 "'");
  }
}

}  // namespace

Request decode_v1_request(const util::Json& doc) {
  if (!doc.is_object())
    throw InvalidArgumentError("request must be a JSON object");
  const std::string& op = doc.at("op").as_string();
  if (op == "eval") {
    EvalRequest request;
    request.kernel = doc.at("kernel").as_string();
    return request;
  }
  if (op == "dse") return parse_dse_request(doc);
  throw InvalidArgumentError("unknown op '" + op +
                             "' (expected \"eval\" or \"dse\")");
}

Request decode_v2_request(const util::Json& doc) {
  if (!doc.is_object())
    throw InvalidArgumentError("request must be a JSON object");
  if (!doc.contains("protocol_version"))
    throw InvalidArgumentError(
        "missing 'protocol_version' (this server speaks version " +
        std::to_string(kProtocolVersion) + ")");
  const util::Json& version = doc.at("protocol_version");
  if (!version.is_number() ||
      version.as_number() != static_cast<double>(kProtocolVersion))
    throw InvalidArgumentError(
        "unsupported protocol_version " + version.dump() +
        " (this server speaks version " + std::to_string(kProtocolVersion) +
        ")");
  if (!doc.contains("id"))
    throw InvalidArgumentError("missing request 'id'");
  const util::Json& id = doc.at("id");
  if (!id.is_string() && !id.is_number())
    throw InvalidArgumentError("'id' must be a string or number");
  if (!doc.contains("op"))
    throw InvalidArgumentError("missing 'op'");
  const std::string& op = doc.at("op").as_string();

  if (op == "list") {
    require_known_fields(doc, op, {});
    return ListRequest{};
  }
  if (op == "eval") {
    require_known_fields(doc, op, {"kernel"});
    EvalRequest request;
    request.kernel = require_string(doc, "kernel", op);
    return request;
  }
  if (op == "dse") {
    require_known_fields(doc, op, {"kernels", "config"});
    return parse_dse_request(doc);
  }
  if (op == "map" || op == "bitstream") {
    require_known_fields(doc, op, {"kernel", "arch"});
    const std::string kernel = require_string(doc, "kernel", op);
    const std::string arch = require_string(doc, "arch", op);
    if (op == "map") return MapRequest{kernel, arch};
    return BitstreamRequest{kernel, arch};
  }
  if (op == "simulate" || op == "vcd") {
    require_known_fields(doc, op, {"kernel", "arch", "engine"});
    const std::string kernel = require_string(doc, "kernel", op);
    const std::string arch = require_string(doc, "arch", op);
    const sim::SimEngine engine = parse_engine_field(doc);
    if (op == "simulate") return SimulateRequest{kernel, arch, engine};
    return VcdRequest{kernel, arch, engine};
  }
  if (op == "simulate_batch") {
    require_known_fields(doc, op, {"kernel", "archs", "engine"});
    SimulateBatchRequest request;
    request.kernel = require_string(doc, "kernel", op);
    request.engine = parse_engine_field(doc);
    if (doc.contains("archs")) {
      const util::Json& list = doc.at("archs");
      if (!list.is_array() || list.size() == 0)
        throw InvalidArgumentError("'archs' must be a non-empty array");
      for (std::size_t i = 0; i < list.size(); ++i)
        request.archs.push_back(list.at(i).as_string());
    }
    return request;
  }
  if (op == "lint") {
    require_known_fields(doc, op, {"kernel", "arch"});
    LintRequest request;
    if (doc.contains("kernel"))
      request.kernel = require_string(doc, "kernel", op);
    if (doc.contains("arch"))
      request.arch = require_string(doc, "arch", op);
    return request;
  }
  if (op == "rtl") {
    require_known_fields(doc, op, {"arch"});
    RtlRequest request;
    request.arch = require_string(doc, "arch", op);
    return request;
  }
  if (op == "dot") {
    require_known_fields(doc, op, {"kernel"});
    DotRequest request;
    request.kernel = require_string(doc, "kernel", op);
    return request;
  }
  if (op == "cache_stats") {
    require_known_fields(doc, op, {});
    return CacheStatsRequest{};
  }
  if (op == "cache_save" || op == "cache_load") {
    require_known_fields(doc, op, {"path"});
    const std::string path = require_string(doc, "path", op);
    if (op == "cache_save") return CacheSaveRequest{path};
    return CacheLoadRequest{path};
  }
  if (op == "ping") {
    require_known_fields(doc, op, {"delay_ms"});
    PingRequest request;
    if (doc.contains("delay_ms"))
      request.delay_ms = doc.at("delay_ms").as_int("'delay_ms'");
    return request;
  }
  if (op == "dse_shard") {
    require_known_fields(doc, op, {"kernels", "config", "begin", "end",
                                   "mode"});
    DseShardRequest request;
    request.kernels = parse_kernel_names(doc);
    request.config = parse_dse_config(doc);
    for (const char* field : {"begin", "end"})
      if (!doc.contains(field))
        throw InvalidArgumentError("op 'dse_shard' requires a '" +
                                   std::string(field) + "' field");
    request.begin = doc.at("begin").as_int("'begin'");
    request.end = doc.at("end").as_int("'end'");
    if (request.begin < 0)
      throw InvalidArgumentError("'begin' must be non-negative");
    if (request.end <= request.begin)
      throw InvalidArgumentError(
          "shard range is empty ('end' must exceed 'begin')");
    const std::string mode = require_string(doc, "mode", op);
    if (mode == "exact")
      request.exact = true;
    else if (mode != "estimate")
      throw InvalidArgumentError("unknown shard mode '" + mode +
                                 "' (expected \"estimate\" or \"exact\")");
    return request;
  }
  if (op == "worker_info") {
    require_known_fields(doc, op, {});
    return WorkerInfoRequest{};
  }
  throw InvalidArgumentError(
      "unknown op '" + op +
      "' (expected one of: list, eval, dse, map, simulate, simulate_batch, "
      "lint, rtl, dot, vcd, bitstream, cache_stats, cache_save, cache_load, "
      "ping, dse_shard, worker_info)");
}

// ------------------------------------------------------------------ bodies

namespace {

util::Json ok_body(const char* op) {
  util::Json body = util::Json::object();
  body.set("op", op).set("ok", true);
  return body;
}

}  // namespace

util::Json to_body(const ListResponse& resp) {
  util::Json kernels = util::Json::array();
  for (const KernelInfo& info : resp.kernels) {
    util::Json entry = util::Json::object();
    entry.set("name", info.name)
        .set("iterations", static_cast<std::int64_t>(info.iterations))
        .set("op_set", info.op_set)
        .set("array", info.array);
    kernels.push(std::move(entry));
  }
  util::Json architectures = util::Json::array();
  for (const std::string& name : resp.architectures) architectures.push(name);
  util::Json body = ok_body("list");
  body.set("kernels", std::move(kernels));
  body.set("architectures", std::move(architectures));
  return body;
}

util::Json to_body(const EvalResponse& resp) {
  util::Json body = ok_body("eval");
  body.set("report", core::to_json(resp.kernel, resp.rows));
  return body;
}

util::Json to_body(const DseResponse& resp) {
  const dse::ExplorationResult& result = resp.result;
  util::Json kernel_names = util::Json::array();
  for (const std::string& name : resp.kernels) kernel_names.push(name);
  util::Json pareto = util::Json::array();
  for (const dse::Candidate* c : result.pareto_points())
    pareto.push(c->point.label());
  util::Json base = util::Json::object();
  base.set("area_slices", result.base_area)
      .set("cycles", static_cast<std::int64_t>(result.base_cycles))
      .set("time_ns", result.base_time_ns);

  util::Json body = ok_body("dse");
  body.set("kernels", std::move(kernel_names));
  body.set("candidates", static_cast<std::int64_t>(result.candidates.size()));
  body.set("pareto", std::move(pareto));
  body.set("base", std::move(base));
  if (result.selected >= 0) {
    const dse::Candidate& best = result.best();
    util::Json selected = util::Json::object();
    selected.set("label", best.point.label())
        .set("area_slices", best.area_synthesized)
        .set("cycles", static_cast<std::int64_t>(best.exact_cycles))
        .set("time_ns", best.exact_time_ns)
        .set("stalls", static_cast<std::int64_t>(best.total_stalls));
    body.set("selected", std::move(selected));
  } else {
    body.set("selected", util::Json());
  }
  return body;
}

util::Json to_body(const MapResponse& resp) {
  util::Json body = ok_body("map");
  body.set("kernel", resp.kernel)
      .set("arch", resp.arch)
      .set("cycles", resp.cycles)
      .set("peak_mults_per_cycle", resp.peak_critical_issues)
      .set("schedule", resp.schedule);
  return body;
}

util::Json to_body(const SimulateResponse& resp) {
  util::Json body = ok_body("simulate");
  body.set("kernel", resp.kernel)
      .set("arch", resp.arch)
      .set("engine", resp.engine)
      .set("cycles", resp.cycles)
      .set("pe_utilization_percent", 100.0 * resp.pe_utilization)
      .set("matches_golden", resp.matches_golden);
  return body;
}

util::Json to_body(const SimulateBatchResponse& resp) {
  util::Json rows = util::Json::array();
  for (const SimulateResponse& row : resp.rows) {
    util::Json entry = util::Json::object();
    entry.set("arch", row.arch)
        .set("cycles", row.cycles)
        .set("pe_utilization_percent", 100.0 * row.pe_utilization)
        .set("matches_golden", row.matches_golden);
    rows.push(std::move(entry));
  }
  util::Json body = ok_body("simulate_batch");
  body.set("kernel", resp.kernel)
      .set("engine", resp.engine)
      .set("results", std::move(rows));
  return body;
}

util::Json to_body(const LintResponse& resp) {
  util::Json rows = util::Json::array();
  for (const LintResponse::Row& row : resp.rows) {
    util::Json entry = util::Json::object();
    entry.set("kernel", row.kernel).set("arch", row.arch);
    // {"errors", "warnings", "diagnostics"} merged flat into the row.
    entry.merge(row.report.to_json());
    rows.push(std::move(entry));
  }
  util::Json body = ok_body("lint");
  body.set("clean", resp.clean())
      .set("errors", resp.error_count())
      .set("warnings", resp.warning_count())
      .set("results", std::move(rows));
  return body;
}

util::Json to_body(const RtlResponse& resp) {
  util::Json body = ok_body("rtl");
  body.set("arch", resp.arch).set("verilog", resp.verilog);
  return body;
}

util::Json to_body(const DotResponse& resp) {
  util::Json body = ok_body("dot");
  body.set("kernel", resp.kernel).set("dot", resp.dot);
  return body;
}

util::Json to_body(const VcdResponse& resp) {
  util::Json body = ok_body("vcd");
  body.set("kernel", resp.kernel).set("arch", resp.arch).set("vcd", resp.vcd);
  return body;
}

util::Json to_body(const BitstreamResponse& resp) {
  util::Json body = ok_body("bitstream");
  body.set("kernel", resp.kernel)
      .set("arch", resp.arch)
      .set("summary", resp.summary)
      .set("bytes", static_cast<std::int64_t>(resp.bytes));
  return body;
}

namespace {

// Shared by the eval- and mapping-cache sections of cache_stats.
util::Json& set_cache_stat_fields(util::Json& body,
                                  const runtime::CacheStats& stats) {
  return body.set("entries", static_cast<std::int64_t>(stats.entries))
      .set("hits", static_cast<std::int64_t>(stats.hits))
      .set("misses", static_cast<std::int64_t>(stats.misses))
      .set("invalidations", static_cast<std::int64_t>(stats.invalidations))
      .set("evictions", static_cast<std::int64_t>(stats.evictions))
      .set("max_entries", static_cast<std::int64_t>(stats.max_entries))
      .set("hit_rate", stats.hit_rate());
}

}  // namespace

util::Json to_body(const CacheStatsResponse& resp) {
  util::Json body = ok_body("cache_stats");
  body.set("threads", resp.threads);
  set_cache_stat_fields(body, resp.stats);
  util::Json mapping = util::Json::object();
  set_cache_stat_fields(mapping, resp.mapping_stats);
  body.set("mapping", std::move(mapping));
  util::Json estimates = util::Json::object();
  set_cache_stat_fields(estimates, resp.estimate_stats);
  body.set("estimates", std::move(estimates));
  util::Json sim = util::Json::object();
  set_cache_stat_fields(sim, resp.sim_stats);
  body.set("sim", std::move(sim));
  return body;
}

util::Json to_body(const CacheSaveResponse& resp) {
  util::Json body = ok_body("cache_save");
  body.set("path", resp.path)
      .set("entries", static_cast<std::int64_t>(resp.entries));
  return body;
}

util::Json to_body(const CacheLoadResponse& resp) {
  util::Json body = ok_body("cache_load");
  body.set("path", resp.path)
      .set("entries_loaded", static_cast<std::int64_t>(resp.entries_loaded))
      .set("entries_total", static_cast<std::int64_t>(resp.entries_total));
  return body;
}

util::Json to_body(const PingResponse& resp) {
  util::Json body = ok_body("ping");
  body.set("delay_ms", resp.delay_ms);
  return body;
}

util::Json to_body(const DseShardResponse& resp) {
  util::Json body = ok_body("dse_shard");
  body.set("mode", resp.exact ? "exact" : "estimate")
      .set("begin", static_cast<std::int64_t>(resp.begin))
      .set("end", static_cast<std::int64_t>(resp.end));
  if (resp.exact) {
    // [point][kernel] matrices, shard order × domain order.
    util::Json cycles = util::Json::array();
    util::Json stalls = util::Json::array();
    for (std::size_t i = 0; i < resp.cycles.size(); ++i) {
      util::Json cycle_row = util::Json::array();
      util::Json stall_row = util::Json::array();
      for (std::size_t k = 0; k < resp.cycles[i].size(); ++k) {
        cycle_row.push(static_cast<std::int64_t>(resp.cycles[i][k]));
        stall_row.push(static_cast<std::int64_t>(resp.stalls[i][k]));
      }
      cycles.push(std::move(cycle_row));
      stalls.push(std::move(stall_row));
    }
    body.set("cycles", std::move(cycles));
    body.set("stalls", std::move(stalls));
  } else {
    body.set("base_cycles", static_cast<std::int64_t>(resp.base_cycles));
    util::Json estimates = util::Json::array();
    for (const long value : resp.estimated_cycles)
      estimates.push(static_cast<std::int64_t>(value));
    body.set("estimated_cycles", std::move(estimates));
  }
  return body;
}

util::Json to_body(const WorkerInfoResponse& resp) {
  util::Json body = ok_body("worker_info");
  body.set("threads", resp.threads)
      .set("max_inflight", resp.max_inflight)
      .set("kernels", static_cast<std::int64_t>(resp.kernels))
      .set("architectures", static_cast<std::int64_t>(resp.architectures))
      .set("pid", static_cast<std::int64_t>(resp.pid))
      .set("uptime_ms", static_cast<std::int64_t>(resp.uptime_ms));
  return body;
}

util::Json encode_dse_config(const dse::ExplorerConfig& config) {
  util::Json doc = util::Json::object();
  doc.set("max_units_per_row", config.max_units_per_row)
      .set("max_units_per_col", config.max_units_per_col)
      .set("max_stages", config.max_stages)
      .set("max_area_ratio", config.max_area_ratio)
      .set("max_time_ratio", config.max_time_ratio)
      .set("pareto_epsilon", config.pareto_epsilon);
  switch (config.objective) {
    case dse::Objective::kMinTime:
      doc.set("objective", "min_time");
      break;
    case dse::Objective::kMinArea:
      doc.set("objective", "min_area");
      break;
    case dse::Objective::kMinAreaTimeProduct:
      doc.set("objective", "min_area_time");
      break;
  }
  return doc;
}

util::Json error_body(const std::string& message) {
  util::Json body = util::Json::object();
  body.set("ok", false).set("error", message);
  return body;
}

util::Json encode_v2_response(const util::Json& id, util::Json body) {
  util::Json out = util::Json::object();
  out.set("protocol_version", kProtocolVersion);
  out.set("id", id);
  out.merge(std::move(body));
  return out;
}

// ------------------------------------------------------------ v1 batch shim

util::Json run_v1_batch(const util::Json& requests, Service& service) {
  if (!requests.is_array())
    throw InvalidArgumentError("batch input must be a JSON array of requests");

  // A shared cache carries counters from earlier batches; report only this
  // batch's activity by diffing against a snapshot.
  const runtime::CacheStats before = service.cache()->stats();

  // Decode every request up front, then fan the valid ones out across the
  // service's dispatch pool. Slot i always holds request i's body, so
  // out-of-order completion cannot disturb the positional v1 output.
  std::vector<util::Json> bodies(requests.size());
  std::vector<std::optional<std::future<util::Json>>> inflight(
      requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    try {
      inflight[i] = service.submit(decode_v1_request(requests.at(i)));
    } catch (const std::exception& e) {
      bodies[i] = error_body(e.what());
    }
  }
  util::Json results = util::Json::array();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    util::Json entry =
        inflight[i] ? inflight[i]->get() : std::move(bodies[i]);
    entry.set("request", static_cast<std::int64_t>(i));
    results.push(std::move(entry));
  }

  const runtime::CacheStats after = service.cache()->stats();
  runtime::CacheStats batch_stats;
  batch_stats.hits = after.hits - before.hits;
  batch_stats.misses = after.misses - before.misses;
  util::Json runtime_report = util::Json::object();
  runtime_report.set("threads", service.thread_count())
      .set("requests", static_cast<std::int64_t>(requests.size()))
      .set("cache_hits", static_cast<std::int64_t>(batch_stats.hits))
      .set("cache_misses", static_cast<std::int64_t>(batch_stats.misses))
      .set("cache_entries_total", static_cast<std::int64_t>(after.entries))
      .set("cache_hit_rate", batch_stats.hit_rate());

  util::Json out = util::Json::object();
  out.set("results", std::move(results));
  out.set("runtime", std::move(runtime_report));
  return out;
}

}  // namespace rsp::api
