// Long-running serving mode: newline-delimited JSON over a byte stream.
//
// Each input line is one v2 request object (see api/protocol.hpp). Requests
// are dispatched concurrently on the Service's pools and each response is
// written — as one line, atomically — the moment it completes, so responses
// may appear out of input order; clients correlate by the echoed `id`.
//
// Protocol errors (a malformed line, an unknown op, a missing
// protocol_version, a duplicate id, ...) produce an in-band
// {"ok": false, "error": ...} response on the output stream and never
// terminate the loop; `id` is echoed when it could be extracted and null
// otherwise. Request ids must be unique for the lifetime of the stream —
// enforcing that retains one id string per accepted request, the one piece
// of per-request state the loop keeps forever (budget roughly
// bytes-per-id × requests for very long-lived streams).
//
// A line holding a JSON *array* is accepted as a v1 batch document through
// the compatibility shim: it is executed inline (blocking the read loop,
// exactly the v1 "one document, one response" contract) and answered with
// the positional v1 response document on a single line.
#pragma once

#include <cstddef>
#include <iosfwd>

#include "api/service.hpp"

namespace rsp::api {

struct ServeResult {
  std::size_t requests = 0;  ///< lines answered, including error responses
  std::size_t errors = 0;    ///< in-band protocol/execution error responses
  /// False when the output stream failed: responses were lost and the loop
  /// stopped reading early — there is nobody left to answer. Callers
  /// should report this out-of-band (exit code); it cannot travel in-band.
  bool output_ok = true;
};

/// Reads requests from `in` until EOF (or until `out` fails), streaming
/// responses to `out`. Returns after every in-flight request has completed
/// and been written.
ServeResult serve(Service& service, std::istream& in, std::ostream& out);

}  // namespace rsp::api
