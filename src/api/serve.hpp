// Long-running serving mode: newline-delimited JSON over a byte stream.
//
// Each input line is one v2 request object (see api/protocol.hpp). Requests
// are dispatched concurrently on the Service's pools and each response is
// written — as one line, atomically — the moment it completes, so responses
// may appear out of input order; clients correlate by the echoed `id`.
//
// Protocol errors (a malformed line, an unknown op, a missing
// protocol_version, a duplicate id, ...) produce an in-band
// {"ok": false, "error": ...} response on the output stream and never
// terminate the loop; `id` is echoed when it could be extracted and null
// otherwise. Request ids must be unique within a sliding window of the
// stream's most recently accepted requests (ServeOptions::seen_id_window,
// default kDefaultSeenIdWindow): a duplicate inside the window is rejected
// in-band, while an id older than the window may be reused — bounding
// duplicate tracking to window-many id strings keeps a long-lived socket
// connection from accumulating one id per request forever.
//
// A line holding a JSON *array* is accepted as a v1 batch document through
// the compatibility shim: it is executed inline (blocking the read loop,
// exactly the v1 "one document, one response" contract) and answered with
// the positional v1 response document on a single line.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>

#include "api/service.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"

namespace rsp::api {

/// Duplicate-id tracking bound: ids are guaranteed unique only among the
/// most recent this-many accepted requests of one stream (~64k id strings
/// of state at worst, regardless of stream lifetime).
inline constexpr std::size_t kDefaultSeenIdWindow = 65536;

struct ServeOptions {
  /// Sliding-window size for duplicate-id rejection; 0 disables the bound
  /// (every id retained for the stream's lifetime, the pre-socket
  /// behaviour).
  std::size_t seen_id_window = kDefaultSeenIdWindow;
  /// Deterministic fault injection (`--fault-plan`, chaos tests only):
  /// consulted once per request line, before dispatch. Shared across every
  /// connection of a process so the plan's ordinals are process-wide —
  /// a re-admitted worker connection does not replay its faults.
  std::shared_ptr<util::FaultInjector> fault;
};

struct ServeResult {
  std::size_t requests = 0;  ///< lines answered, including error responses
  std::size_t errors = 0;    ///< in-band protocol/execution error responses
  /// False when the output stream failed: responses were lost and the loop
  /// stopped reading early — there is nobody left to answer. Callers
  /// should report this out-of-band (exit code); it cannot travel in-band.
  bool output_ok = true;
};

/// Reads requests from `in` until EOF (or until `out` fails), streaming
/// responses to `out`. Returns after every in-flight request has completed
/// and been written.
ServeResult serve(Service& service, std::istream& in, std::ostream& out,
                  const ServeOptions& options = {});

/// Failed result slots in a v1 batch response document. A response that is
/// not the expected {"results": [...]} shape (a top-level error document,
/// say) counts as one error instead of throwing — the serve loop must keep
/// running whatever run_v1_batch hands back.
std::size_t count_v1_result_errors(const util::Json& response);

}  // namespace rsp::api
