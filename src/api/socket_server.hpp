// Socket front-end for the NDJSON serving mode.
//
// `SocketServer` listens on any number of unix-domain sockets and/or TCP
// ports and runs the existing `api::serve` loop per accepted connection
// over a socket-backed iostream. Every connection shares ONE Service —
// the thread pools, the EvalCache and the MappingCache stay process-wide,
// so a second client's eval of an already-measured kernel is a cache hit —
// while the serve-loop state (duplicate-id window, in-flight futures) is
// per-connection: id scopes never leak across clients.
//
// Lifecycle:
//   * `run()` accepts in the calling thread and spawns one serving thread
//     per connection, bounded by `max_connections`; a connection over the
//     bound is answered with a single in-band error line and closed.
//   * `shutdown()` (thread- and signal-safe; `install_signal_handlers()`
//     wires it to SIGINT/SIGTERM) drains gracefully: the listeners stop
//     accepting, every active connection's read side is half-closed so its
//     serve loop sees EOF, finishes the requests already in flight and
//     writes their responses, and `run()` returns once the last connection
//     thread has been joined.
//   * Per-connection counters are aggregated and, via
//     `Service::set_stats_extension`, folded into the `cache_stats`
//     response body as a "server" section (see `stats_json()`).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <streambuf>
#include <string>
#include <vector>

#include "api/serve.hpp"
#include "api/service.hpp"
#include "util/json.hpp"
#include "util/retry.hpp"

namespace rsp::api {

// -------------------------------------------------------------- addresses

/// One `--listen` operand, parsed.
struct ListenAddress {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;            ///< unix: filesystem path of the socket
  std::string host;            ///< tcp: bind/connect host ("" = all/loopback)
  int port = 0;                ///< tcp: port; 0 binds an ephemeral port
  std::string spec() const;    ///< round-trips to the `--listen` form
};

/// Parses the `--listen` address forms:
///   * anything containing '/', or without ':', is a unix-socket path
///     ("/run/rsp.sock", "./rsp.sock", "rsp.sock");
///   * "host:port" / ":port" is TCP (empty host binds every interface and
///     connects to loopback; port 0 asks for an ephemeral port).
/// Throws InvalidArgumentError on a malformed spec (bad port, empty path).
ListenAddress parse_listen_address(const std::string& spec);

/// Connects a blocking socket to `address` (the client side of the forms
/// above). Returns the connected fd; throws rsp::Error on failure.
int connect_socket(const ListenAddress& address);

/// Bounded retry policy for `connect_socket` — the shared
/// util::RetryPolicy: a worker that is still binding (ECONNREFUSED, or
/// ENOENT for a unix socket not yet created) is retried up to `attempts`
/// times with the policy's (default linear) backoff between tries.
/// Non-transient failures (resolution errors, EACCES, ...) are never
/// retried. The default is a single attempt — identical to the plain
/// overload — so callers opt in explicitly (`rsp_cli connect --retry`,
/// the coordinator's worker links and health probes).
using ConnectOptions = util::RetryPolicy;

int connect_socket(const ListenAddress& address,
                   const ConnectOptions& options);

// -------------------------------------------------------------- streambuf

/// A std::streambuf over a connected socket fd, buffered both ways.
/// Writes use MSG_NOSIGNAL so a vanished peer surfaces as badbit (which
/// the serve loop already handles) instead of SIGPIPE. The get and put
/// areas are disjoint, so ONE concurrent reader plus ONE concurrent
/// writer thread are safe on a single instance (the serve loop's shape;
/// multiple writers must serialize externally, as serve's output mutex
/// does). Does not own the fd.
class SocketStreamBuf : public std::streambuf {
 public:
  explicit SocketStreamBuf(int fd);

  /// True when a read ended with a socket *error* (ECONNRESET, ...) as
  /// opposed to the peer's clean EOF — iostreams report both as eof, but
  /// a client's exit code must distinguish "server finished" from "server
  /// vanished with responses undelivered".
  bool read_failed() const { return read_error_; }

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  bool flush_buffer();
  int fd_;
  bool read_error_ = false;
  std::vector<char> in_buf_;
  std::vector<char> out_buf_;
};

// ----------------------------------------------------------------- server

struct SocketServerOptions {
  /// Concurrent-connection bound; a connection beyond it is answered with
  /// one in-band error line and closed (counted in `rejected`).
  int max_connections = 64;
  /// Serve-loop tuning applied to every connection (duplicate-id window).
  ServeOptions serve;
};

/// Aggregate counters across the server's lifetime (see stats_json()).
struct SocketServerStats {
  std::size_t accepted = 0;   ///< connections served (includes active)
  std::size_t active = 0;     ///< connections currently being served
  std::size_t rejected = 0;   ///< connections refused over max_connections
  std::size_t requests = 0;   ///< request lines answered, closed conns only
  std::size_t errors = 0;     ///< in-band error responses, closed conns only
};

class SocketServer {
 public:
  /// Binds and listens on every address. A *stale* socket file from a
  /// crashed server is unlinked so it does not block the bind; a
  /// non-socket file at the path, or a socket a live server still answers
  /// on, is refused instead (throws — binding must never delete data or
  /// silently strand a running server). Throws rsp::Error when any
  /// endpoint cannot be bound.
  SocketServer(Service& service, const std::vector<ListenAddress>& addresses,
               SocketServerOptions options = {});
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Accept loop: serves until shutdown(), then drains — stops accepting,
  /// half-closes every active connection's read side, joins every
  /// connection thread (their in-flight requests complete and answer
  /// first). Call at most once.
  void run();

  /// Initiates graceful shutdown. Safe from any thread and from signal
  /// handlers (async-signal-safe: atomic flags and a self-pipe write).
  /// Calling it a *second* time escalates to a forced shutdown: stuck
  /// connections — peers that sent requests but never read the responses,
  /// which would block the graceful drain forever — are fully closed, so
  /// a second ^C always gets the operator out. run() returns only after
  /// the drain completes.
  void shutdown();

  /// Routes SIGINT/SIGTERM to shutdown() for the lifetime of this server
  /// (at most one server per process may install handlers at a time).
  void install_signal_handlers();

  /// Bound addresses with ephemeral TCP ports resolved — `addresses()[i]`
  /// corresponds to the constructor's `addresses[i]`.
  const std::vector<ListenAddress>& addresses() const { return addresses_; }

  SocketServerStats stats() const;
  /// The "server" section folded into cache_stats:
  /// {"connections": {"accepted", "active", "rejected", "max"},
  ///  "requests", "errors"}.
  util::Json stats_json() const;

 private:
  struct Impl;
  Impl* impl_;  // pimpl: keeps <sys/socket.h> & friends out of the header
  std::vector<ListenAddress> addresses_;
};

/// The matching client pump (`rsp_cli connect`): streams `in`'s lines to
/// the server at `address` while a reader thread streams response lines to
/// `out` — tolerating arbitrary out-of-order and bursty completions — then
/// half-closes the write side on input EOF and returns once the server has
/// drained and closed. Returns the process exit code (non-zero when `out`
/// failed); throws rsp::Error when the connection cannot be established
/// (after `connect`'s bounded retries, single-attempt by default).
int run_socket_client(const ListenAddress& address, std::istream& in,
                      std::ostream& out, const ConnectOptions& connect = {});

}  // namespace rsp::api
