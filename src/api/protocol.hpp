// Versioned JSON wire protocol for rsp::api::Service.
//
// v2 (current) — one request per JSON object, designed for NDJSON streams:
//
//   {"protocol_version": 2, "id": "r1", "op": "eval", "kernel": "SAD"}
//
// `protocol_version` and `id` are mandatory; `id` (a string or number) is
// echoed verbatim in the response so clients can match responses that
// complete out of order. Unknown fields are rejected — a typo'd field
// silently ignored would look like a successful request. Responses:
//
//   {"protocol_version": 2, "id": "r1", "op": "eval", "ok": true, ...}
//   {"protocol_version": 2, "id": "r1", "ok": false, "error": "..."}
//
// v1 (compatibility) — the PR-2 batch document: a JSON array of bare
// {"op": "eval"|"dse", ...} objects, no envelope, positional results.
// `run_v1_batch` executes one concurrently over a Service and reassembles
// a "results" array byte-identical to the retired serial
// runtime::run_batch (the "runtime" counters are scheduling-dependent).
//
// The full schema reference lives in docs/PROTOCOL.md.
#pragma once

#include <string>

#include "api/service.hpp"
#include "util/json.hpp"

namespace rsp::api {

inline constexpr int kProtocolVersion = 2;

/// Decodes a v2 request object (envelope + payload, strict field checking).
/// Throws InvalidArgumentError/NotFoundError with a message suitable for an
/// in-band error response.
Request decode_v2_request(const util::Json& doc);

/// Decodes one element of a v1 batch array ("eval" and "dse" only, lenient
/// about unknown top-level fields — exactly the PR-2 rules and messages).
Request decode_v1_request(const util::Json& doc);

/// Response-body renderers: {"op": ..., "ok": true, <payload>}. The body
/// carries no envelope; serve adds one, the v1 shim appends the positional
/// "request" index instead.
util::Json to_body(const ListResponse&);
util::Json to_body(const EvalResponse&);
util::Json to_body(const DseResponse&);
util::Json to_body(const MapResponse&);
util::Json to_body(const SimulateResponse&);
util::Json to_body(const SimulateBatchResponse&);
util::Json to_body(const LintResponse&);
util::Json to_body(const RtlResponse&);
util::Json to_body(const DotResponse&);
util::Json to_body(const VcdResponse&);
util::Json to_body(const BitstreamResponse&);
util::Json to_body(const CacheStatsResponse&);
util::Json to_body(const CacheSaveResponse&);
util::Json to_body(const CacheLoadResponse&);
util::Json to_body(const PingResponse&);
util::Json to_body(const DseShardResponse&);
util::Json to_body(const WorkerInfoResponse&);

/// Inverse of the "config" payload parser: renders `config` as the wire
/// object `dse`/`dse_shard` decode accepts, with every field explicit —
/// how the coordinator pins one run's exact configuration across workers
/// instead of trusting their defaults to match.
util::Json encode_dse_config(const dse::ExplorerConfig& config);

/// {"ok": false, "error": message} — the in-band failure body.
util::Json error_body(const std::string& message);

/// Wraps a body in the v2 envelope: protocol_version and the echoed `id`
/// first, then the body's fields in order (moved, not copied — rtl/vcd
/// bodies carry the whole generated text).
util::Json encode_v2_response(const util::Json& id, util::Json body);

/// The v1 compatibility shim: executes a v1 batch document (JSON array of
/// requests) over `service`, scheduling independent requests concurrently
/// on the service's pools, and reassembles the positional response
/// document:
///
///   {"results": [{..., "request": i}, ...], "runtime": {...}}
///
/// Per-request failures are reported in-band in their result slot; only a
/// non-array input throws (InvalidArgumentError). The "results" array is
/// byte-identical to the serial PR-2 runtime::run_batch for every valid
/// document and for its tested error paths (a request carrying several
/// independent errors may report a different one of them, since config
/// validation moved to decode time); the "runtime" hit/miss counters are
/// scheduling-dependent under concurrent dispatch.
util::Json run_v1_batch(const util::Json& requests, Service& service);

}  // namespace rsp::api
