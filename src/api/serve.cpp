#include "api/serve.hpp"

#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <istream>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "api/protocol.hpp"
#include "util/error.hpp"

namespace rsp::api {

namespace {

/// In-flight futures above this size trigger a sweep of completed ones, so
/// an endless stream does not accumulate one future per request forever.
constexpr std::size_t kPruneThreshold = 64;

/// Duplicate-id tracker over a sliding window of accepted ids: constant
/// space for any stream lifetime. Only *accepted* ids enter the window —
/// a rejected duplicate must not evict (and thereby re-admit) the id it
/// collided with.
class SeenIdWindow {
 public:
  explicit SeenIdWindow(std::size_t window) : window_(window) {}

  /// True when `id` was accepted (not seen within the window).
  bool insert(const std::string& id) {
    if (!seen_.insert(id).second) return false;
    if (window_ == 0) return true;  // unbounded
    order_.push_back(id);
    if (order_.size() > window_) {
      seen_.erase(order_.front());
      order_.pop_front();
    }
    return true;
  }

 private:
  std::size_t window_;
  std::unordered_set<std::string> seen_;
  std::deque<std::string> order_;
};

}  // namespace

std::size_t count_v1_result_errors(const util::Json& response) {
  if (!response.is_object() || !response.contains("results"))
    return 1;  // a top-level error document: one failure, answered whole
  const util::Json& results = response.at("results");
  if (!results.is_array()) return 1;
  std::size_t errors = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const util::Json& slot = results.at(i);
    if (!slot.is_object() || !slot.contains("ok") ||
        !slot.at("ok").is_bool() || !slot.at("ok").as_bool())
      ++errors;
  }
  return errors;
}

ServeResult serve(Service& service, std::istream& in, std::ostream& out,
                  const ServeOptions& options) {
  std::mutex out_mutex;
  std::atomic<std::size_t> errors{0};
  // Set when the output stream fails: responses are being lost, so the
  // read loop stops accepting new requests and the caller is told.
  std::atomic<bool> output_failed{false};
  std::size_t requests = 0;
  SeenIdWindow seen_ids(options.seen_id_window);
  std::vector<std::future<void>> inflight;

  // One response per line, written whole under the lock: concurrent
  // completions may interleave *lines* in any order but never bytes.
  const auto write_line = [&out, &out_mutex,
                           &output_failed](const util::Json& doc) {
    const std::string line = doc.dump();
    const std::lock_guard<std::mutex> lock(out_mutex);
    out << line << "\n" << std::flush;
    if (!out) output_failed.store(true, std::memory_order_relaxed);
  };
  const auto write_error = [&](const util::Json& id,
                               const std::string& message) {
    errors.fetch_add(1, std::memory_order_relaxed);
    write_line(encode_v2_response(id, error_body(message)));
  };
  // Joins a completed (or, in the final drain, still-running) task. `done`
  // callbacks only fail on pathological conditions (bad_alloc while
  // rendering); the response is lost either way, so account for it and
  // keep serving.
  const auto join = [&errors](std::future<void>& f) {
    if (!f.valid()) return;
    try {
      f.get();
    } catch (...) {
      errors.fetch_add(1, std::memory_order_relaxed);
    }
  };

  // One non-blank input line: parse, validate, dispatch or answer.
  const auto serve_line = [&](const std::string& text) {
    util::Json doc;
    try {
      doc = util::Json::parse(text);
    } catch (const std::exception& e) {
      write_error(util::Json(), e.what());
      return;
    }

    if (doc.is_array()) {
      // v1 batch document through the compatibility shim: executed inline
      // (one document in, one document out — the v1 contract), answered as
      // a single positional-response line. Its requests still fan out
      // across the service's pools; per-request failures live in result
      // slots, so fold them into the error count here. The shim's output
      // shape is never trusted: a top-level error document (or a throw,
      // e.g. bad_alloc assembling a huge response) is answered in-band
      // instead of unwinding the stream.
      util::Json response;
      try {
        response = run_v1_batch(doc, service);
      } catch (const std::exception& e) {
        write_error(util::Json(), e.what());
        return;
      }
      errors.fetch_add(count_v1_result_errors(response),
                       std::memory_order_relaxed);
      write_line(response);
      return;
    }

    // Echo the id on error responses whenever it could be extracted.
    util::Json id;
    if (doc.is_object() && doc.contains("id")) {
      const util::Json& extracted = doc.at("id");
      if (extracted.is_string() || extracted.is_number()) id = extracted;
    }

    Request request;
    try {
      request = decode_v2_request(doc);
    } catch (const std::exception& e) {
      write_error(id, e.what());
      return;
    }

    // Ids must be unique within the recent-request window — a reused id
    // would make out-of-order responses ambiguous.
    const std::string id_key = id.dump();
    if (!seen_ids.insert(id_key)) {
      write_error(id, "duplicate request id " + id_key);
      return;
    }

    // Grow the vector *before* submitting: if push_back could throw after
    // submit, the task's future would be lost and the final drain would
    // miss it — leaving the task to outlive this frame.
    inflight.emplace_back();
    inflight.back() = service.submit(
        std::move(request), [&errors, &write_line, id](util::Json body) {
          if (body.contains("ok") && !body.at("ok").as_bool())
            errors.fetch_add(1, std::memory_order_relaxed);
          write_line(encode_v2_response(id, std::move(body)));
        });

    if (inflight.size() >= kPruneThreshold) {
      std::vector<std::future<void>> still_running;
      // Reserve up front: a push_back throwing mid-sweep would destroy the
      // futures already moved over, abandoning tasks that reference this
      // frame.
      still_running.reserve(inflight.size());
      for (std::future<void>& f : inflight) {
        if (f.wait_for(std::chrono::seconds(0)) == std::future_status::ready)
          join(f);
        else
          still_running.push_back(std::move(f));
      }
      inflight = std::move(still_running);
    }
  };

  // Scripted fault injection (chaos tests). Returns true when the fault
  // consumed the request line: the loop must stop (drop/truncate close the
  // connection) or skip dispatch (refuse answered in-band). Byte-level
  // faults write under out_mutex so they interleave with real responses as
  // whole lines, exactly like a misbehaving peer on the wire.
  bool fault_closed = false;
  const auto inject_fault = [&](const std::string& text) {
    const util::FaultAction action = options.fault->on_message();
    using Kind = util::FaultAction::Kind;
    switch (action.kind) {
      case Kind::kNone:
        return false;
      case Kind::kDelay:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(action.delay_ms));
        return false;
      case Kind::kDrop:
        // Vanish without answering: the peer sees its request swallowed
        // and the connection closed.
        fault_closed = true;
        return true;
      case Kind::kTruncate: {
        // A partial response line (no newline), then close: the peer reads
        // a malformed fragment terminated by EOF.
        const std::lock_guard<std::mutex> lock(out_mutex);
        out << "{\"fault\":\"truncated" << std::flush;
        fault_closed = true;
        return true;
      }
      case Kind::kGarbage: {
        // A non-JSON line ahead of the real response.
        const std::lock_guard<std::mutex> lock(out_mutex);
        out << "\x01\x02 fault-injected garbage \x03\n" << std::flush;
        return false;
      }
      case Kind::kRefuse: {
        // In-band rejection; echo the id when one can be extracted so the
        // refusal pairs with the request like any real error response.
        util::Json id;
        try {
          const util::Json doc = util::Json::parse(text);
          if (doc.is_object() && doc.contains("id")) {
            const util::Json& extracted = doc.at("id");
            if (extracted.is_string() || extracted.is_number())
              id = extracted;
          }
        } catch (const std::exception&) {
        }
        write_error(id, "fault injection: request refused in-band");
        return true;
      }
    }
    return false;
  };

  // In-flight done-callbacks reference this frame's locals, so no
  // exception (bad_alloc in parse/push_back, a write failure) may unwind
  // it while tasks are still running: drain them first, then rethrow.
  std::string line;
  try {
    while (!output_failed.load(std::memory_order_relaxed) && !fault_closed &&
           std::getline(in, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      ++requests;
      if (options.fault && inject_fault(line)) continue;
      serve_line(line);
    }
  } catch (...) {
    for (std::future<void>& f : inflight)
      if (f.valid()) f.wait();
    throw;
  }

  for (std::future<void>& f : inflight) join(f);
  ServeResult result;
  result.requests = requests;
  result.errors = errors.load();
  result.output_ok = !output_failed.load();
  return result;
}

}  // namespace rsp::api
