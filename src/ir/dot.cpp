#include "ir/dot.hpp"

#include <sstream>

namespace rsp::ir {

namespace {

std::string dot_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string to_dot(const DataflowGraph& graph, const std::string& title) {
  std::ostringstream os;
  os << "digraph \"" << dot_escape(title.empty() ? "dfg" : title) << "\" {\n";
  os << "  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n";
  for (NodeId id = 0; id < graph.size(); ++id) {
    const Node& n = graph.node(id);
    os << "  n" << id << " [label=\"" << id << ": " << op_name(n.kind);
    if (n.kind == OpKind::kConst) os << " " << n.imm;
    if (n.kind == OpKind::kShift) os << " by " << n.imm;
    if (n.mem) os << " " << dot_escape(n.mem->array) << "[]";
    if (!n.label.empty()) os << "\\n" << dot_escape(n.label);
    os << "\"";
    if (is_critical_op(n.kind)) os << ", style=filled, fillcolor=lightcoral";
    else if (is_memory_op(n.kind)) os << ", style=filled, fillcolor=lightblue";
    os << "];\n";
  }
  for (NodeId id = 0; id < graph.size(); ++id) {
    const Node& n = graph.node(id);
    for (NodeId in : n.inputs)
      if (in != kInvalidNode) os << "  n" << in << " -> n" << id << ";\n";
    for (const CarriedInput& c : n.carried)
      os << "  n" << c.producer << " -> n" << id
         << " [style=dashed, label=\"d=" << c.distance << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const LoopKernel& kernel) {
  return to_dot(kernel.body(), kernel.name());
}

}  // namespace rsp::ir
