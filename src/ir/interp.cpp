#include "ir/interp.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace rsp::ir {

void Memory::allocate(const std::string& name, std::size_t size) {
  arrays_[name] = std::vector<std::int64_t>(size, 0);
}

void Memory::set(const std::string& name, std::vector<std::int64_t> data) {
  arrays_[name] = std::move(data);
}

bool Memory::has(const std::string& name) const {
  return arrays_.count(name) != 0;
}

std::size_t Memory::size(const std::string& name) const {
  return find(name).size();
}

const std::vector<std::int64_t>& Memory::find(const std::string& name) const {
  auto it = arrays_.find(name);
  if (it == arrays_.end())
    throw NotFoundError("memory has no array named '" + name + "'");
  return it->second;
}

std::int64_t Memory::read(const std::string& name, std::int64_t index) const {
  const auto& data = find(name);
  if (index < 0 || static_cast<std::size_t>(index) >= data.size())
    throw InvalidArgumentError("read out of bounds: " + name + "[" +
                               std::to_string(index) + "], size " +
                               std::to_string(data.size()));
  return data[static_cast<std::size_t>(index)];
}

void Memory::write(const std::string& name, std::int64_t index,
                   std::int64_t value) {
  auto it = arrays_.find(name);
  if (it == arrays_.end())
    throw NotFoundError("memory has no array named '" + name + "'");
  if (index < 0 || static_cast<std::size_t>(index) >= it->second.size())
    throw InvalidArgumentError("write out of bounds: " + name + "[" +
                               std::to_string(index) + "], size " +
                               std::to_string(it->second.size()));
  it->second[static_cast<std::size_t>(index)] = value;
}

const std::vector<std::int64_t>& Memory::array(const std::string& name) const {
  return find(name);
}

std::vector<std::string> Memory::names() const {
  std::vector<std::string> out;
  out.reserve(arrays_.size());
  for (const auto& [name, data] : arrays_) out.push_back(name);
  return out;
}

namespace {

std::int64_t wrap16(std::int64_t v) {
  return static_cast<std::int16_t>(static_cast<std::uint64_t>(v));
}

std::int64_t wrap32(std::int64_t v) {
  return static_cast<std::int32_t>(static_cast<std::uint64_t>(v));
}

}  // namespace

std::int64_t eval_op(OpKind kind, std::int64_t a, std::int64_t b,
                     std::int64_t imm, DatapathMode mode) {
  std::int64_t result = 0;
  switch (kind) {
    case OpKind::kConst:
      result = imm;
      break;
    case OpKind::kAdd:
      result = a + b;
      break;
    case OpKind::kSub:
      result = a - b;
      break;
    case OpKind::kMult:
      result = a * b;
      break;
    case OpKind::kAbs:
      result = a < 0 ? -a : a;
      break;
    case OpKind::kShift:
      if (imm >= 0)
        result = a << imm;
      else
        result = a >> (-imm);
      break;
    case OpKind::kRoute:
      result = a;
      break;
    case OpKind::kLoad:
    case OpKind::kStore:
    case OpKind::kNop:
      throw InvalidArgumentError(
          "eval_op handles datapath ops only; memory ops are evaluated by "
          "the interpreter/simulator");
  }
  if (mode == DatapathMode::kWrap16)
    result = kind == OpKind::kMult ? wrap32(result) : wrap16(result);
  return result;
}

InterpResult interpret(const UnrolledGraph& graph, Memory& memory,
                       DatapathMode mode) {
  InterpResult result;
  result.values.assign(static_cast<std::size_t>(graph.size()), 0);

  auto operand_value = [&](const ConcreteOperand& o) {
    return o.is_imm() ? o.imm : result.values[static_cast<std::size_t>(o.op)];
  };

  for (OpId id = 0; id < graph.size(); ++id) {
    const ConcreteOp& op = graph.op(id);
    std::int64_t value = 0;
    switch (op.kind) {
      case OpKind::kLoad:
        value = memory.read(op.array, op.address);
        ++result.loads;
        break;
      case OpKind::kStore:
        memory.write(op.array, op.address, operand_value(op.operands[0]));
        ++result.stores;
        break;
      case OpKind::kNop:
        break;
      default: {
        const std::int64_t a =
            op.operands.size() > 0 ? operand_value(op.operands[0]) : 0;
        const std::int64_t b =
            op.operands.size() > 1 ? operand_value(op.operands[1]) : 0;
        value = eval_op(op.kind, a, b, op.imm, mode);
        break;
      }
    }
    result.values[static_cast<std::size_t>(id)] = value;
  }
  return result;
}

}  // namespace rsp::ir
