#include "ir/kernel.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace rsp::ir {

LoopKernel::LoopKernel(std::string name, DataflowGraph body,
                       std::int64_t trip_count)
    : name_(std::move(name)), body_(std::move(body)), trip_count_(trip_count) {
  if (name_.empty()) throw InvalidArgumentError("kernel requires a name");
  if (trip_count_ <= 0)
    throw InvalidArgumentError("kernel trip count must be positive");
  if (body_.empty()) throw InvalidArgumentError("kernel body is empty");
  body_.validate();
}

std::string LoopKernel::op_set_string() const {
  std::vector<std::string> names;
  for (OpKind k : op_set()) names.emplace_back(op_name(k));
  return util::join(names, ", ");
}

}  // namespace rsp::ir
