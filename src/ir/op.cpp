#include "ir/op.hpp"

#include <ostream>

#include "util/error.hpp"

namespace rsp::ir {

int op_arity(OpKind kind) {
  switch (kind) {
    case OpKind::kConst:
    case OpKind::kLoad:
    case OpKind::kNop:
      return 0;
    case OpKind::kStore:
    case OpKind::kAbs:
    case OpKind::kShift:
    case OpKind::kRoute:
      return 1;
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMult:
      return 2;
  }
  throw InternalError("unknown OpKind");
}

const char* op_name(OpKind kind) {
  switch (kind) {
    case OpKind::kConst:
      return "const";
    case OpKind::kLoad:
      return "load";
    case OpKind::kStore:
      return "store";
    case OpKind::kAdd:
      return "add";
    case OpKind::kSub:
      return "sub";
    case OpKind::kMult:
      return "mult";
    case OpKind::kAbs:
      return "abs";
    case OpKind::kShift:
      return "shift";
    case OpKind::kRoute:
      return "route";
    case OpKind::kNop:
      return "nop";
  }
  throw InternalError("unknown OpKind");
}

const char* op_symbol(OpKind kind) {
  switch (kind) {
    case OpKind::kConst:
      return "C";
    case OpKind::kLoad:
      return "Ld";
    case OpKind::kStore:
      return "St";
    case OpKind::kAdd:
      return "+";
    case OpKind::kSub:
      return "-";
    case OpKind::kMult:
      return "*";
    case OpKind::kAbs:
      return "abs";
    case OpKind::kShift:
      return "<<";
    case OpKind::kRoute:
      return ">";
    case OpKind::kNop:
      return ".";
  }
  throw InternalError("unknown OpKind");
}

bool is_memory_op(OpKind kind) {
  return kind == OpKind::kLoad || kind == OpKind::kStore;
}

bool is_primitive_op(OpKind kind) {
  switch (kind) {
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kAbs:
    case OpKind::kShift:
    case OpKind::kRoute:
    case OpKind::kConst:
      return true;
    default:
      return false;
  }
}

bool is_critical_op(OpKind kind) { return kind == OpKind::kMult; }

bool produces_value(OpKind kind) {
  return kind != OpKind::kStore && kind != OpKind::kNop;
}

std::ostream& operator<<(std::ostream& os, OpKind kind) {
  return os << op_name(kind);
}

}  // namespace rsp::ir
