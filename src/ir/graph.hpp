// Loop-body dataflow graph.
//
// One `DataflowGraph` describes a single iteration of a kernel loop. Memory
// nodes carry an index function of the iteration number so the unroller can
// materialise concrete addresses; loop-carried inputs (accumulators,
// recurrences) reference a producer node in an earlier iteration together
// with the dependence distance and an initial value for boundary iterations.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ir/op.hpp"

namespace rsp::ir {

/// Index of a node inside its graph.
using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Element index of a memory access as a function of the iteration number.
using IndexFn = std::function<std::int64_t(std::int64_t iter)>;

/// Memory reference of a load/store node.
struct MemRef {
  std::string array;  ///< name of the array in data memory
  IndexFn index;      ///< iteration -> element index
};

/// A dataflow input carried across loop iterations.
struct CarriedInput {
  NodeId producer = kInvalidNode;  ///< producing node in iteration iter-distance
  int distance = 1;                ///< dependence distance in iterations (>0)
  std::int64_t init = 0;           ///< value used when iter < distance
};

/// One operation of the loop body.
struct Node {
  OpKind kind = OpKind::kNop;
  /// Same-iteration dataflow inputs. An entry may be kInvalidNode if the
  /// corresponding operand comes from `carried`.
  std::vector<NodeId> inputs;
  /// Loop-carried operands, positionally aligned with kInvalidNode slots in
  /// `inputs` (first carried input fills the first invalid slot, etc.).
  std::vector<CarriedInput> carried;
  /// Immediate payload: constant value for kConst, shift amount for kShift
  /// (negative = arithmetic right shift).
  std::int64_t imm = 0;
  /// Memory reference; engaged iff kind is kLoad/kStore.
  std::optional<MemRef> mem;
  /// Optional debug label ("y[k]", "acc", ...).
  std::string label;
};

/// A directed acyclic graph over same-iteration edges; loop-carried edges may
/// form cycles through earlier iterations (that is their point).
class DataflowGraph {
 public:
  /// Appends a node; returns its id. Throws InvalidArgumentError when the
  /// operand count does not match the op arity or references are out of
  /// range / forward (same-iteration edges must point backwards so the node
  /// list is a topological order by construction).
  NodeId add(Node node);

  const Node& node(NodeId id) const;
  Node& node(NodeId id);
  std::int32_t size() const { return static_cast<std::int32_t>(nodes_.size()); }
  bool empty() const { return nodes_.empty(); }

  /// All nodes, in topological (insertion) order.
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Ids of nodes whose value nobody consumes in the same iteration and that
  /// are not stores (useful for detecting dead code in kernel definitions).
  std::vector<NodeId> dead_value_nodes() const;

  /// Number of nodes of the given kind.
  int count(OpKind kind) const;

  /// Distinct op kinds present, in a stable order (for Table 3's
  /// "operation set" column). kConst/kRoute/kNop are omitted: the paper's
  /// operation sets list computational ops only.
  std::vector<OpKind> op_set() const;

  /// Same-iteration users of each node (computed on demand).
  std::vector<std::vector<NodeId>> build_users() const;

  /// ASAP level of every node counting unit latency per op and ignoring
  /// loop-carried edges (they resolve to earlier iterations).
  std::vector<int> asap_levels() const;

  /// Depth = 1 + max ASAP level (0 for an empty graph).
  int depth() const;

  /// Full structural validation (arity, slot/carried alignment, memory refs
  /// present exactly on memory ops). add() already enforces most of this;
  /// validate() re-checks after any in-place mutation.
  void validate() const;

 private:
  std::vector<Node> nodes_;
};

}  // namespace rsp::ir
