#include "ir/unroll.hpp"

#include <map>
#include <utility>

#include "util/error.hpp"

namespace rsp::ir {

UnrolledGraph::UnrolledGraph(const LoopKernel& kernel)
    : trip_count_(kernel.trip_count()), body_size_(kernel.body().size()) {
  const DataflowGraph& body = kernel.body();
  ops_.reserve(static_cast<std::size_t>(trip_count_) *
               static_cast<std::size_t>(body_size_));

  // Memory disambiguation state per (array, element): the last store and
  // the loads issued since it. Loads take a RAW dependence on the last
  // store; stores take WAW on the last store and WAR on those loads.
  struct Location {
    OpId last_store = kInvalidOp;
    std::vector<OpId> loads_since_store;
  };
  std::map<std::pair<std::string, std::int64_t>, Location> memory_state;

  for (std::int64_t iter = 0; iter < trip_count_; ++iter) {
    for (NodeId nid = 0; nid < body_size_; ++nid) {
      const Node& node = body.node(nid);
      ConcreteOp op;
      op.kind = node.kind;
      op.body_node = nid;
      op.iter = iter;
      op.imm = node.imm;
      if (node.mem) {
        op.array = node.mem->array;
        op.address = node.mem->index(iter);
        if (op.address < 0)
          throw InvalidArgumentError(
              "kernel '" + kernel.name() + "' node " + std::to_string(nid) +
              " computes negative address at iteration " +
              std::to_string(iter));
      }

      if (node.mem) {
        const OpId self = iter * body_size_ + nid;
        Location& loc = memory_state[{op.array, op.address}];
        if (op.kind == OpKind::kLoad) {
          if (loc.last_store != kInvalidOp) op.mem_deps.push_back(loc.last_store);
          loc.loads_since_store.push_back(self);
        } else {  // store
          if (loc.last_store != kInvalidOp) op.mem_deps.push_back(loc.last_store);
          for (OpId ld : loc.loads_since_store) op.mem_deps.push_back(ld);
          loc.last_store = self;
          loc.loads_since_store.clear();
        }
      }

      std::size_t carried_cursor = 0;
      for (NodeId in : node.inputs) {
        ConcreteOperand operand;
        if (in != kInvalidNode) {
          operand.op = id_of(in, iter);
        } else {
          RSP_ASSERT(carried_cursor < node.carried.size());
          const CarriedInput& c = node.carried[carried_cursor++];
          if (iter >= c.distance) {
            operand.op = id_of(c.producer, iter - c.distance);
          } else {
            operand.op = kInvalidOp;
            operand.imm = c.init;
          }
        }
        op.operands.push_back(operand);
      }
      ops_.push_back(std::move(op));
    }
  }

  users_.resize(ops_.size());
  for (OpId id = 0; id < size(); ++id) {
    for (const ConcreteOperand& operand : ops_[static_cast<std::size_t>(id)].operands) {
      if (!operand.is_imm()) {
        RSP_ASSERT_MSG(operand.op < id,
                       "unrolled graph must be topologically ordered");
        users_[static_cast<std::size_t>(operand.op)].push_back(id);
      }
    }
  }
}

const ConcreteOp& UnrolledGraph::op(OpId id) const {
  if (id < 0 || id >= size()) throw NotFoundError("op id out of range");
  return ops_[static_cast<std::size_t>(id)];
}

OpId UnrolledGraph::id_of(NodeId node, std::int64_t iter) const {
  if (node < 0 || node >= body_size_ || iter < 0 || iter >= trip_count_)
    throw NotFoundError("(node, iter) out of range");
  return iter * body_size_ + node;
}

}  // namespace rsp::ir
