// Fluent construction helpers for loop-body dataflow graphs.
//
//   GraphBuilder b;
//   auto y  = b.load("y", [](auto k) { return k; }, "y[k]");
//   auto z  = b.load("z", [](auto k) { return k + 10; }, "z[k+10]");
//   auto p  = b.mult(y, z);
//   b.store("x", [](auto k) { return k; }, p);
//   DataflowGraph g = b.take();
#pragma once

#include <utility>

#include "ir/graph.hpp"
#include "util/error.hpp"

namespace rsp::ir {

class GraphBuilder {
 public:
  NodeId constant(std::int64_t value, std::string label = {}) {
    Node n;
    n.kind = OpKind::kConst;
    n.imm = value;
    n.label = std::move(label);
    return graph_.add(std::move(n));
  }

  NodeId load(std::string array, IndexFn index, std::string label = {}) {
    Node n;
    n.kind = OpKind::kLoad;
    n.mem = MemRef{std::move(array), std::move(index)};
    n.label = std::move(label);
    return graph_.add(std::move(n));
  }

  NodeId store(std::string array, IndexFn index, NodeId value,
               std::string label = {}) {
    Node n;
    n.kind = OpKind::kStore;
    n.inputs = {value};
    n.mem = MemRef{std::move(array), std::move(index)};
    n.label = std::move(label);
    return graph_.add(std::move(n));
  }

  NodeId add(NodeId a, NodeId b, std::string label = {}) {
    return binary(OpKind::kAdd, a, b, std::move(label));
  }
  NodeId sub(NodeId a, NodeId b, std::string label = {}) {
    return binary(OpKind::kSub, a, b, std::move(label));
  }
  NodeId mult(NodeId a, NodeId b, std::string label = {}) {
    return binary(OpKind::kMult, a, b, std::move(label));
  }

  NodeId abs(NodeId a, std::string label = {}) {
    Node n;
    n.kind = OpKind::kAbs;
    n.inputs = {a};
    n.label = std::move(label);
    return graph_.add(std::move(n));
  }

  /// amount > 0 shifts left, amount < 0 shifts right (arithmetic).
  NodeId shift(NodeId a, int amount, std::string label = {}) {
    Node n;
    n.kind = OpKind::kShift;
    n.inputs = {a};
    n.imm = amount;
    n.label = std::move(label);
    return graph_.add(std::move(n));
  }

  /// Explicit idle slot in the linearised body (a configuration word that
  /// does nothing); used to shape the per-cycle resource profile.
  NodeId nop() {
    Node n;
    n.kind = OpKind::kNop;
    return graph_.add(std::move(n));
  }

  /// Accumulating add: result = operand + (own value from `distance`
  /// iterations ago, `init` on boundary iterations). Returns the accumulator
  /// node id.
  NodeId accumulate(NodeId operand, std::int64_t init = 0, int distance = 1,
                    std::string label = {}) {
    // Self-referential carried input: the producer is the accumulator
    // itself, whose id is known before insertion (nodes are appended).
    const NodeId self = graph_.size();
    Node n;
    n.kind = OpKind::kAdd;
    n.inputs = {operand, kInvalidNode};
    n.carried = {CarriedInput{self, distance, init}};
    n.label = std::move(label);
    const NodeId id = graph_.add(std::move(n));
    RSP_ASSERT(id == self);
    return id;
  }

  /// Binary op whose second operand is `producer`'s value from a previous
  /// iteration (generic recurrence, e.g. Livermore State).
  NodeId binary_carried(OpKind kind, NodeId a, NodeId producer, int distance,
                        std::int64_t init, std::string label = {}) {
    Node n;
    n.kind = kind;
    n.inputs = {a, kInvalidNode};
    n.carried = {CarriedInput{producer, distance, init}};
    n.label = std::move(label);
    const NodeId id = graph_.add(std::move(n));
    graph_.validate();
    return id;
  }

  const DataflowGraph& graph() const { return graph_; }

  DataflowGraph take() {
    graph_.validate();
    return std::move(graph_);
  }

 private:
  NodeId binary(OpKind kind, NodeId a, NodeId b, std::string label) {
    Node n;
    n.kind = kind;
    n.inputs = {a, b};
    n.label = std::move(label);
    return graph_.add(std::move(n));
  }

  DataflowGraph graph_;
};

}  // namespace rsp::ir
