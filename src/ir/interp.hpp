// Reference interpreter ("golden model").
//
// Executes an UnrolledGraph sequentially in topological order against a
// named-array memory. The cycle-accurate simulator (src/sim) must produce
// exactly the same final memory and the same per-op values; tests compare
// the two on every kernel.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/unroll.hpp"

namespace rsp::ir {

/// Named-array data memory. Arrays are independent address spaces, matching
/// the paper's "frame buffer / data memory with multiple buses" abstraction.
class Memory {
 public:
  /// Creates (or replaces) an array of `size` zero-initialised elements.
  void allocate(const std::string& name, std::size_t size);

  /// Creates (or replaces) an array with the given contents.
  void set(const std::string& name, std::vector<std::int64_t> data);

  bool has(const std::string& name) const;
  std::size_t size(const std::string& name) const;

  std::int64_t read(const std::string& name, std::int64_t index) const;
  void write(const std::string& name, std::int64_t index, std::int64_t value);

  const std::vector<std::int64_t>& array(const std::string& name) const;

  /// Names of all arrays, sorted.
  std::vector<std::string> names() const;

  bool operator==(const Memory& other) const { return arrays_ == other.arrays_; }

 private:
  const std::vector<std::int64_t>& find(const std::string& name) const;
  std::map<std::string, std::vector<std::int64_t>> arrays_;
};

/// Optional datapath width emulation. The paper's array uses a 16-bit data
/// bus with 2n-bit multiplier outputs; `kExact` computes in int64 (default
/// for kernels whose values stay in range), `kWrap16` wraps every result to
/// the 16-bit datapath except multiplier outputs, which keep 32 bits.
enum class DatapathMode { kExact, kWrap16 };

/// Applies the datapath semantics of one op to already-evaluated operands.
std::int64_t eval_op(OpKind kind, std::int64_t a, std::int64_t b,
                     std::int64_t imm, DatapathMode mode);

/// Result of interpreting a whole unrolled loop.
struct InterpResult {
  std::vector<std::int64_t> values;  ///< value produced by every op
  std::int64_t loads = 0;
  std::int64_t stores = 0;
};

/// Runs the graph to completion, mutating `memory`.
InterpResult interpret(const UnrolledGraph& graph, Memory& memory,
                       DatapathMode mode = DatapathMode::kExact);

}  // namespace rsp::ir
