// Operation set of the RSP-CGRA processing element.
//
// The paper's kernels (Table 3) use: mult, add, sub, abs, shift, load and
// store. `kConst` models configuration-supplied constants (the constant C in
// the paper's matrix-multiplication example is "specified in the
// configuration cache"), `kRoute` models an explicit PE-to-PE data move
// inserted by the mapper, and `kNop` is an idle slot.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace rsp::ir {

enum class OpKind : std::uint8_t {
  kConst,   // immediate from configuration cache; 0 inputs
  kLoad,    // memory read via a row read-bus; 0 inputs (address is affine)
  kStore,   // memory write via the row write-bus; 1 input
  kAdd,     // 2 inputs
  kSub,     // 2 inputs
  kMult,    // 2 inputs; the paper's area/delay-critical resource
  kAbs,     // 1 input
  kShift,   // 1 input, immediate shift amount (negative = right shift)
  kRoute,   // 1 input; move a value to another PE without computation
  kNop,     // 0 inputs
};

/// Number of dataflow inputs the op kind consumes.
int op_arity(OpKind kind);

/// Short mnemonic ("mult", "add", ...), matching the paper's Table 3 names.
const char* op_name(OpKind kind);

/// One/two letter symbol used by the schedule pretty-printer
/// ("Ld", "St", "*", "+", "-", "abs", "<<", "→", ".").
const char* op_symbol(OpKind kind);

/// True for kLoad/kStore (they occupy row data buses).
bool is_memory_op(OpKind kind);

/// True for ops executed on the PE's primitive resources (ALU/shift path).
bool is_primitive_op(OpKind kind);

/// True for ops executed on the area/delay-critical resource that the RSP
/// template extracts and shares (the array multiplier).
bool is_critical_op(OpKind kind);

/// True for ops that produce a value consumable by other ops.
bool produces_value(OpKind kind);

std::ostream& operator<<(std::ostream& os, OpKind kind);

}  // namespace rsp::ir
