// Unrolling a LoopKernel into a flat graph of concrete operations.
//
// Every (body node, iteration) pair becomes one `ConcreteOp` with concrete
// memory addresses and concrete dependence edges; loop-carried inputs resolve
// to the producing op of the earlier iteration (or to an immediate initial
// value on boundary iterations). Both the reference interpreter and the
// loop-pipelining mapper consume this representation, which guarantees that
// the schedule the mapper emits and the golden semantics agree on the
// dependence structure.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/kernel.hpp"

namespace rsp::ir {

/// Index into UnrolledGraph::ops.
using OpId = std::int64_t;
inline constexpr OpId kInvalidOp = -1;

/// One operand of a concrete op: either another op's value or an immediate.
struct ConcreteOperand {
  OpId op = kInvalidOp;       ///< producer, or kInvalidOp for an immediate
  std::int64_t imm = 0;       ///< used when op == kInvalidOp
  bool is_imm() const { return op == kInvalidOp; }
};

/// A fully concrete operation instance.
struct ConcreteOp {
  OpKind kind = OpKind::kNop;
  NodeId body_node = kInvalidNode;  ///< originating node in the kernel body
  std::int64_t iter = 0;            ///< iteration that spawned this instance
  std::vector<ConcreteOperand> operands;
  std::int64_t imm = 0;             ///< const value / shift amount
  std::string array;                ///< memory ops: array name
  std::int64_t address = 0;         ///< memory ops: element index
  /// Memory-ordering predecessors (RAW/WAR/WAW on the same location).
  /// These carry no data — they only constrain scheduling order.
  std::vector<OpId> mem_deps;
};

/// Flat, topologically ordered operation list for the entire loop.
class UnrolledGraph {
 public:
  UnrolledGraph(const LoopKernel& kernel);

  const std::vector<ConcreteOp>& ops() const { return ops_; }
  const ConcreteOp& op(OpId id) const;
  std::int64_t size() const { return static_cast<std::int64_t>(ops_.size()); }

  std::int64_t trip_count() const { return trip_count_; }
  std::int32_t body_size() const { return body_size_; }

  /// Op id of (body node, iteration).
  OpId id_of(NodeId node, std::int64_t iter) const;

  /// Users of each op (computed once on construction).
  const std::vector<std::vector<OpId>>& users() const { return users_; }

 private:
  std::vector<ConcreteOp> ops_;
  std::vector<std::vector<OpId>> users_;
  std::int64_t trip_count_ = 0;
  std::int32_t body_size_ = 0;
};

}  // namespace rsp::ir
