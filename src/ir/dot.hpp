// Graphviz export of loop-body dataflow graphs (debugging aid and
// documentation artefact; DESIGN.md's per-kernel diagrams come from here).
#pragma once

#include <string>

#include "ir/graph.hpp"
#include "ir/kernel.hpp"

namespace rsp::ir {

/// Renders the body graph in DOT syntax. Loop-carried edges are dashed and
/// annotated with their distance.
std::string to_dot(const DataflowGraph& graph, const std::string& title = {});

/// Convenience overload naming the graph after the kernel.
std::string to_dot(const LoopKernel& kernel);

}  // namespace rsp::ir
