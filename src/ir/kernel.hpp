// A kernel loop: one body dataflow graph plus a trip count.
//
// This is the unit the paper maps onto the reconfigurable array ("selected
// critical loops"). The kernel also carries the Table 3 style summary used
// by the exploration flow: its operation set and multiplier pressure.
#pragma once

#include <string>
#include <vector>

#include "ir/graph.hpp"

namespace rsp::ir {

class LoopKernel {
 public:
  LoopKernel(std::string name, DataflowGraph body, std::int64_t trip_count);

  const std::string& name() const { return name_; }
  const DataflowGraph& body() const { return body_; }
  std::int64_t trip_count() const { return trip_count_; }

  /// Computational op kinds used by the body (Table 3 "Operation set").
  std::vector<OpKind> op_set() const { return body_.op_set(); }

  /// Multiplications per iteration of the body.
  int mults_per_iteration() const { return body_.count(OpKind::kMult); }

  /// Total ops over the whole loop (body size × trip count).
  std::int64_t total_ops() const {
    return static_cast<std::int64_t>(body_.size()) * trip_count_;
  }

  /// "mult, add, sub" style rendering of the op set.
  std::string op_set_string() const;

 private:
  std::string name_;
  DataflowGraph body_;
  std::int64_t trip_count_;
};

}  // namespace rsp::ir
