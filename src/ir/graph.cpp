#include "ir/graph.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rsp::ir {

namespace {

void check_node(const Node& node, NodeId id) {
  const int arity = op_arity(node.kind);
  if (static_cast<int>(node.inputs.size()) != arity)
    throw InvalidArgumentError(
        std::string("node of kind ") + op_name(node.kind) + " expects " +
        std::to_string(arity) + " inputs, got " +
        std::to_string(node.inputs.size()));

  int invalid_slots = 0;
  for (NodeId in : node.inputs) {
    if (in == kInvalidNode) {
      ++invalid_slots;
    } else if (in < 0 || in >= id) {
      throw InvalidArgumentError(
          "input " + std::to_string(in) + " of node " + std::to_string(id) +
          " is out of range (same-iteration edges must point backwards)");
    }
  }
  if (invalid_slots != static_cast<int>(node.carried.size()))
    throw InvalidArgumentError(
        "node " + std::to_string(id) + " has " +
        std::to_string(node.carried.size()) + " carried inputs but " +
        std::to_string(invalid_slots) + " open operand slots");
  for (const CarriedInput& c : node.carried) {
    if (c.distance <= 0)
      throw InvalidArgumentError("loop-carried distance must be positive");
    if (c.producer < 0)
      throw InvalidArgumentError("loop-carried producer must be a valid node");
  }
  const bool needs_mem = is_memory_op(node.kind);
  if (needs_mem && !node.mem)
    throw InvalidArgumentError(std::string(op_name(node.kind)) +
                               " node requires a memory reference");
  if (!needs_mem && node.mem)
    throw InvalidArgumentError(std::string(op_name(node.kind)) +
                               " node must not carry a memory reference");
  if (needs_mem && !node.mem->index)
    throw InvalidArgumentError("memory reference requires an index function");
}

}  // namespace

NodeId DataflowGraph::add(Node node) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  check_node(node, id);
  for (const CarriedInput& c : node.carried) {
    if (c.producer >= static_cast<NodeId>(nodes_.size()) + 1 &&
        c.producer != id) {
      // Carried producers may reference any node including later ones and
      // the node itself (a self-accumulator); range-check them lazily in
      // validate() since the full graph may not exist yet.
    }
  }
  nodes_.push_back(std::move(node));
  return id;
}

const Node& DataflowGraph::node(NodeId id) const {
  if (id < 0 || id >= size()) throw NotFoundError("node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

Node& DataflowGraph::node(NodeId id) {
  if (id < 0 || id >= size()) throw NotFoundError("node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

std::vector<NodeId> DataflowGraph::dead_value_nodes() const {
  std::vector<bool> used(nodes_.size(), false);
  for (const Node& n : nodes_) {
    for (NodeId in : n.inputs)
      if (in != kInvalidNode) used[static_cast<std::size_t>(in)] = true;
    for (const CarriedInput& c : n.carried)
      used[static_cast<std::size_t>(c.producer)] = true;
  }
  std::vector<NodeId> dead;
  for (NodeId id = 0; id < size(); ++id) {
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    if (!used[static_cast<std::size_t>(id)] && produces_value(n.kind))
      dead.push_back(id);
  }
  return dead;
}

int DataflowGraph::count(OpKind kind) const {
  return static_cast<int>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [&](const Node& n) { return n.kind == kind; }));
}

std::vector<OpKind> DataflowGraph::op_set() const {
  // Computational ops only, matching the paper's Table 3 "operation set"
  // column (loads/stores are implied by every kernel).
  static constexpr OpKind kOrder[] = {OpKind::kMult, OpKind::kAdd,
                                      OpKind::kSub, OpKind::kAbs,
                                      OpKind::kShift};
  std::vector<OpKind> out;
  for (OpKind k : kOrder)
    if (count(k) > 0) out.push_back(k);
  return out;
}

std::vector<std::vector<NodeId>> DataflowGraph::build_users() const {
  std::vector<std::vector<NodeId>> users(nodes_.size());
  for (NodeId id = 0; id < size(); ++id) {
    for (NodeId in : nodes_[static_cast<std::size_t>(id)].inputs)
      if (in != kInvalidNode) users[static_cast<std::size_t>(in)].push_back(id);
  }
  return users;
}

std::vector<int> DataflowGraph::asap_levels() const {
  std::vector<int> level(nodes_.size(), 0);
  for (NodeId id = 0; id < size(); ++id) {
    int lvl = 0;
    for (NodeId in : nodes_[static_cast<std::size_t>(id)].inputs)
      if (in != kInvalidNode)
        lvl = std::max(lvl, level[static_cast<std::size_t>(in)] + 1);
    level[static_cast<std::size_t>(id)] = lvl;
  }
  return level;
}

int DataflowGraph::depth() const {
  if (nodes_.empty()) return 0;
  const std::vector<int> levels = asap_levels();
  return 1 + *std::max_element(levels.begin(), levels.end());
}

void DataflowGraph::validate() const {
  for (NodeId id = 0; id < size(); ++id) {
    check_node(nodes_[static_cast<std::size_t>(id)], id);
    for (const CarriedInput& c : nodes_[static_cast<std::size_t>(id)].carried)
      if (c.producer >= size())
        throw InvalidArgumentError("loop-carried producer out of range");
  }
}

}  // namespace rsp::ir
